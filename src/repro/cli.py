"""Command-line interface: run reproduction experiments from a shell.

Examples::

    python -m repro list
    python -m repro trace-info --trace mcf_s-1554B
    python -m repro run --trace mcf_s-1554B --l1d berti
    python -m repro run --trace mcf_s-1554B --l1d berti --sanitize \
        --snapshot-every 500 --snapshot-dir ckpts/
    python -m repro run --trace mcf_s-1554B --l1d berti --resume-from ckpts/
    python -m repro compare --trace bc-kron --l1d ip_stride,ipcp,berti
    python -m repro suite --suite spec17 --l1d mlop,ipcp,berti --scale 0.3 \
        --workers 4 --journal suite.jsonl --resume
    python -m repro suite --suite spec17 --l1d mlop,ipcp,berti \
        --workers 4 --journal suite.jsonl --supervise
    python -m repro sancheck --quick
    python -m repro chaos --quick
    python -m repro storage
    python -m repro serve --state-dir svc
    python -m repro submit --state-dir svc --trace mcf_s-1554B \
        --l1d berti --wait
    python -m repro fetch --state-dir svc <campaign-id>
    python -m repro agent --server 10.0.0.5:8421 --pool 4
    python -m repro fleet --state-dir svc

``suite`` and ``compare`` execute through the resilient runner
(:mod:`repro.runner`): jobs run in parallel worker processes, crashes
and hangs fail one job instead of the campaign, and a ``--journal``
makes an interrupted suite resumable with ``--resume``.  With
``--supervise`` they run under the campaign supervisor
(:mod:`repro.runner.supervisor`): worker heartbeats preempt hung jobs
by liveness, resource pressure degrades the pool gracefully, repeat
offenders are quarantined by circuit breaker, and the first Ctrl-C
drains instead of killing.  ``chaos`` turns the hostile-host scenarios
(disk full, SIGKILL mid-append, hangs, memory balloons, clock skew) on
the runner itself and verifies that no journal entry is ever lost or
duplicated.  See ``docs/runner.md``.

``serve`` runs the durable campaign service (:mod:`repro.service`): a
crash-safe scheduler daemon with a write-ahead journal, job leases,
idempotent content-hashed submission, and a checksum-verified result
cache; ``submit`` / ``poll`` / ``fetch`` are its bounded-retry client.
``agent`` turns any host into extra capacity for a running daemon: a
remote worker (:mod:`repro.fleet`) that pulls leased jobs over the same
HTTP API, verifies each trace store's digest before executing, and
heartbeats its leases so a dead or partitioned agent's jobs requeue
exactly once; ``fleet`` shows the daemon's agent registry and degraded
windows.  See ``docs/service.md``.

``sancheck`` and the ``--sanitize`` / ``--snapshot-every`` /
``--resume-from`` flags belong to the sanitizer subsystem
(:mod:`repro.sanitizer`): runtime invariant checking, a differential
lockstep oracle against a pure-reference engine, and crash-durable
snapshots with bit-identical resume.  See ``docs/sanitizer.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table
from repro.errors import ConfigError, ReproError
from repro.prefetchers.registry import available, make_prefetcher, storage_kb
from repro.runner import (
    ExperimentRunner,
    FaultSpec,
    JobSpec,
    RunnerConfig,
    build_matrix_jobs,
    per_trace_results,
    run_job,
)
from repro.workloads.catalog import (
    all_trace_names,
    resolve_trace,
    suite_trace_names,
)

__all__ = [
    "all_trace_names", "build_parser", "main", "resolve_trace",
]


def _runner_config(args, n_jobs: int) -> RunnerConfig:
    workers = args.workers
    if workers < 0:  # --workers -1: one worker per job, bounded by the host
        import os
        workers = max(1, min(os.cpu_count() or 1, n_jobs))
    return RunnerConfig(
        workers=workers,
        timeout=args.timeout,
        retries=args.retries,
        journal_path=args.journal,
        resume=args.resume,
        verbose=True,
    )


def _build_runner(args, n_jobs: int) -> ExperimentRunner:
    """The plain runner, or the campaign supervisor with ``--supervise``."""
    config = _runner_config(args, n_jobs)
    if not getattr(args, "supervise", False):
        return ExperimentRunner(config)
    from repro.runner import CampaignSupervisor, SupervisorConfig

    if config.workers < 1:
        raise ConfigError(
            "--supervise needs a worker pool; pass --workers >= 1",
            field="workers",
        )
    return CampaignSupervisor(config, SupervisorConfig(
        heartbeat_every=args.heartbeat_every,
        heartbeat_timeout=args.heartbeat_timeout,
        quarantine_after=args.quarantine_after,
        manifest_path=args.manifest,
    ))


def _parse_faults(args) -> Dict[str, FaultSpec]:
    """``--inject kind:trace[:period]`` flags → trace-keyed fault specs."""
    faults: Dict[str, FaultSpec] = {}
    for item in args.inject or []:
        parts = item.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad --inject {item!r}; expected kind:trace[:period]",
                field="inject",
            )
        kind, trace = parts[0], parts[1]
        period = int(parts[2]) if len(parts) == 3 else 3
        if kind == "hang":
            faults[trace] = FaultSpec(kind=kind, period=period,
                                      hang_seconds=3600.0)
        else:
            faults[trace] = FaultSpec(kind=kind, period=period)
    return faults


def cmd_list(args) -> int:
    print("Prefetchers:")
    for name in available():
        pf = make_prefetcher(name)
        print(f"  {name:12s} level={pf.level:4s} "
              f"storage={pf.storage_kb():7.2f} KB")
    print("\nTraces:")
    for name in all_trace_names():
        print(f"  {name}")
    return 0


def cmd_trace_info(args) -> int:
    t = resolve_trace(args.trace, args.scale)
    print(f"name:          {t.name}")
    print(f"suite:         {t.suite}")
    print(f"description:   {t.description}")
    print(f"records:       {len(t)}")
    print(f"instructions:  {t.instruction_count}")
    print(f"load IPs:      {t.unique_ips}")
    print(f"footprint:     {t.footprint_bytes() / 1024:.0f} KB")
    print(f"write frac:    {t.write_fraction:.1%}")
    return 0


def cmd_run(args) -> int:
    # One job, run inline through the typed worker: trace/prefetcher
    # errors arrive classified and the result is invariant-checked.
    spec = JobSpec(trace=args.trace, l1d=args.l1d, l2=args.l2,
                   scale=args.scale, mtps=args.mtps,
                   sanitize=args.sanitize,
                   sanitize_every=args.sanitize_every,
                   snapshot_every=args.snapshot_every,
                   snapshot_dir=args.snapshot_dir,
                   resume_from=args.resume_from,
                   engine=args.engine, chunk_size=args.chunk_size,
                   native=args.native)
    if args.profile is not None:
        from repro.perf.profiling import profile_and_report

        dump = args.profile or None  # "" = report only, no stats file
        result, table = profile_and_report(
            run_job, spec, dump_path=dump, top=args.profile_top
        )
        print(table, file=sys.stderr)
        if dump:
            print(f"profile stats written to {dump} "
                  f"(inspect with python -m pstats)", file=sys.stderr)
    else:
        result = run_job(spec)
    pf = result.pf_l1d
    print(result.summary_line())
    print(f"  IPC              {result.ipc:.3f}")
    print(f"  MPKI l1d/l2/llc  {result.l1d_mpki:.1f} / {result.l2_mpki:.1f}"
          f" / {result.llc_mpki:.1f}")
    print(f"  prefetch issued  {pf.issued}")
    print(f"  useful (late)    {pf.useful} ({pf.late})")
    print(f"  accuracy         {pf.accuracy:.1%}")
    print(f"  dram reads       {result.dram_reads} "
          f"(avg latency {result.avg_dram_read_latency:.0f} cycles)")
    return 0


def _attach_stores(args, jobs):
    """Apply ``--trace-store DIR``: convert once, map per worker."""
    if not getattr(args, "trace_store", None):
        return jobs
    from repro.memory.tracestore import attach_trace_stores

    return attach_trace_stores(jobs, args.trace_store)


def cmd_compare(args) -> int:
    t = resolve_trace(args.trace, args.scale)  # fail fast on a bad name
    names = args.l1d.split(",")
    if args.baseline not in names:
        names = [args.baseline] + names
    jobs = build_matrix_jobs(
        [args.trace], names, scale=args.scale, mtps=args.mtps,
        faults=_parse_faults(args),
        engine=args.engine, chunk_size=args.chunk_size,
        native=args.native,
    )
    jobs = _attach_stores(args, jobs)
    runner = _build_runner(args, len(jobs))
    suite = runner.run(jobs)
    print(suite.banner(), file=sys.stderr)

    results = per_trace_results(jobs, suite).get(args.trace, {})
    base = results.get(args.baseline)
    if base is None:
        print(f"error: baseline {args.baseline!r} failed on {args.trace}; "
              f"no speedups to report", file=sys.stderr)
        return 2
    failed = {f.key: f for f in suite.failures}
    rows = []
    for job in jobs:
        n = job.l1d
        if n in results:
            r = results[n]
            rows.append([n, r.ipc, r.speedup_over(base), r.l1d_mpki,
                         r.pf_l1d.accuracy])
        else:
            f = failed.get(job.key)
            rows.append([n, f"FAILED ({f.kind})" if f else "FAILED",
                         "-", "-", "-"])
    print(format_table(
        ["prefetcher", "IPC", f"speedup vs {args.baseline}", "L1D MPKI",
         "accuracy"],
        rows, title=f"{t.name} ({len(t)} accesses)",
    ))
    return 0 if not suite.failures else 3


def cmd_suite(args) -> int:
    trace_names = suite_trace_names(args.suite, args.all_graphs)
    names = args.l1d.split(",")
    if args.baseline not in names:
        names = [args.baseline] + names
    jobs = build_matrix_jobs(
        trace_names, names, scale=args.scale, mtps=args.mtps,
        faults=_parse_faults(args),
        engine=args.engine, chunk_size=args.chunk_size,
        native=args.native,
    )
    jobs = _attach_stores(args, jobs)
    runner = _build_runner(args, len(jobs))
    suite = runner.run(jobs)

    per_trace = per_trace_results(jobs, suite)
    survivors = [t for t in trace_names if args.baseline in per_trace.get(t, {})]
    speeds = geomean_speedup(per_trace, baseline_name=args.baseline)
    rows = [[n, speeds.get(n, 0.0)] for n in names]

    print(suite.banner(), file=sys.stderr)
    for f in suite.failures:
        print(f"  FAILED [{f.kind}] {f.key}: {f.message}", file=sys.stderr)
    quarantined = suite.quarantined
    if quarantined:
        groups = sorted({q.group for q in quarantined})
        print(f"  quarantined: {len(quarantined)} jobs across "
              f"{len(groups)} groups ({', '.join(groups)}); a later "
              f"--resume sends one half-open probe per group",
              file=sys.stderr)
    print(format_table(
        ["prefetcher", "geomean speedup"], rows,
        title=f"suite {args.suite} ({len(survivors)}/{len(trace_names)} "
              f"traces, scale {args.scale})",
    ))
    return 0 if not suite.failures else 3


def cmd_sancheck(args) -> int:
    """Differential checks: reference oracle and/or engine lockstep."""
    from repro.prefetchers.registry import L1D_PREFETCHERS, L2_PREFETCHERS
    from repro.sanitizer import (
        lockstep_engines,
        lockstep_multicore,
        lockstep_run,
        quick_trace,
    )

    modes = list({
        "classic": ("reference",), "batched": ("engines",),
        "native": ("native",), "both": ("reference", "engines"),
        "all": ("reference", "engines", "native"),
    }[args.engine])
    if "native" in modes:
        from repro.native.build import kernel_available

        fn, diag = kernel_available()
        if fn is None:
            print(f"note: native kernel unavailable ({diag}); "
                  f"skipping the native differential", file=sys.stderr)
            modes.remove("native")
            if not modes:
                print("native differential skipped (no compiler); "
                      "nothing else requested")
                return 0
    reports = []

    def check(trace, l1d="none", l2="none"):
        if "reference" in modes:
            reports.append(lockstep_run(trace, l1d=l1d, l2=l2))
            print(reports[-1].describe())
        if "engines" in modes:
            reports.append(lockstep_engines(
                trace, l1d=l1d, l2=l2, chunk_size=args.chunk_size,
            ))
            print(reports[-1].describe())
        if "native" in modes:
            reports.append(lockstep_engines(
                trace, l1d=l1d, l2=l2, chunk_size=args.chunk_size,
                engine="native",
            ))
            print(reports[-1].describe())

    if args.quick:
        trace = quick_trace(args.records)
        for pf in L1D_PREFETCHERS:
            check(trace, l1d=pf)
        for pf in L2_PREFETCHERS:
            if pf == "none":
                continue  # covered by the L1D sweep's l2="none"
            check(trace, l2=pf)
        if "reference" in modes:
            # Multicore never engages the batched loop (it demotes to the
            # per-access path), so there is no engines variant to diff.
            mix = [quick_trace(args.records // 2, f"mix{i}")
                   for i in range(2)]
            reports.append(lockstep_multicore(mix, ["berti", "none"],
                                              ["none", "spp"]))
            print(reports[-1].describe())
    else:
        trace = resolve_trace(args.trace, args.scale)
        if "reference" in modes:
            reports.append(lockstep_run(
                trace, l1d=args.l1d, l2=args.l2,
                seed_divergence=args.seed_divergence,
            ))
            print(reports[-1].describe())
        if "engines" in modes:
            reports.append(lockstep_engines(
                trace, l1d=args.l1d, l2=args.l2,
                chunk_size=args.chunk_size,
                seed_divergence=args.seed_divergence,
            ))
            print(reports[-1].describe())
        if "native" in modes:
            reports.append(lockstep_engines(
                trace, l1d=args.l1d, l2=args.l2,
                chunk_size=args.chunk_size,
                seed_divergence=args.seed_divergence,
                engine="native",
            ))
            print(reports[-1].describe())
    if args.seed_divergence is not None and args.quick:
        trace = quick_trace(args.records)
        if "reference" in modes:
            reports.append(lockstep_run(
                trace, l1d="berti", seed_divergence=args.seed_divergence,
            ))
            print(reports[-1].describe())
        if "engines" in modes:
            reports.append(lockstep_engines(
                trace, l1d="berti", chunk_size=args.chunk_size,
                seed_divergence=args.seed_divergence,
            ))
            print(reports[-1].describe())
        if "native" in modes:
            reports.append(lockstep_engines(
                trace, l1d="berti", chunk_size=args.chunk_size,
                seed_divergence=args.seed_divergence, engine="native",
            ))
            print(reports[-1].describe())

    bad = [r for r in reports if not r.ok]
    seeded = args.seed_divergence is not None
    if seeded:
        # The seeded run MUST diverge (it validates the oracle itself);
        # everything else must agree.  The engines plant fires on the
        # first *read* at or after the seeded index, so its localised
        # divergence point may land a few accesses later.
        def is_seeded(r) -> bool:
            if r.diverged_at is None:
                return False
            if getattr(r, "kind", "") == "engines":
                return r.diverged_at >= args.seed_divergence
            return r.diverged_at == args.seed_divergence

        expected_bad = [r for r in bad if is_seeded(r)]
        real_bad = [r for r in bad if not is_seeded(r)]
        if not expected_bad:
            print("error: seeded divergence was NOT detected",
                  file=sys.stderr)
            return 4
        if real_bad:
            return 4
        print(f"seeded divergence detected at access "
              f"{args.seed_divergence}, as required")
        return 0
    if bad:
        print(f"error: {len(bad)}/{len(reports)} differential runs "
              f"diverged", file=sys.stderr)
        return 4
    print(f"all {len(reports)} differential runs bit-identical")
    return 0


def cmd_chaos(args) -> int:
    """Host-level chaos scenarios against the supervised runner."""
    from repro.runner.chaos import run_chaos

    try:
        results = run_chaos(
            scenarios=args.scenario or None,
            quick=args.quick,
            workdir=args.workdir,
            verbose=True,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    ran = [r for r in results if not r.skipped]
    failed = [r for r in ran if not r.passed]
    mode = ("quick" if args.quick and not args.scenario else
            "selected" if args.scenario else "full")
    print(f"chaos ({mode}): {len(ran) - len(failed)}/{len(ran)} "
          f"scenarios passed")
    if failed:
        for r in failed:
            for problem in r.problems:
                print(f"  {r.name}: {problem}", file=sys.stderr)
        return 5
    return 0


def _fuzz_seed(spec: str) -> int:
    """``--seed``: an integer, or ``from-git-sha`` for CI pinning.

    ``from-git-sha`` derives the seed from ``git rev-parse HEAD``, so a
    CI job is deterministic *per commit* (re-runs of the same commit
    replay identical cases) while still walking fresh cases every push.
    """
    if spec != "from-git-sha":
        return int(spec)
    import subprocess

    sha = subprocess.run(
        ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
        check=True,
    ).stdout.strip()
    return int(sha[:15], 16)


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign, corpus replay, and triage."""
    from repro.fuzz import replay_corpus, run_campaign

    if args.replay:
        results = replay_corpus(args.replay)
        bad = [r for r in results if r["status"] != "ok"]
        for r in results:
            marker = "ok  " if r["status"] == "ok" else "FAIL"
            print(f"  {marker} {r['path']}: {r['detail']}")
        print(f"fuzz replay: {len(results) - len(bad)}/{len(results)} "
              f"corpus cases ok")
        return 0 if not bad else 4

    try:
        seed = _fuzz_seed(args.seed)
    except ValueError:
        print(f"error: --seed must be an integer or 'from-git-sha', "
              f"got {args.seed!r}", file=sys.stderr)
        return 2
    report = run_campaign(
        budget_seconds=args.budget_seconds,
        seed=seed,
        out_dir=args.out,
        rate=args.rate,
        plant_divergence=args.plant_divergence,
        skip_corruption=args.skip_corruption,
        max_shrink_records=args.max_shrink_records,
        log=lambda msg: print(f"  {msg}"),
    )
    doc = report.to_dict()
    corruption = doc["corruption"]
    print(f"fuzz: seed={seed} ran {report.cases_run}/{report.planned} "
          f"cases in {doc['elapsed_seconds']}s"
          + (" [TRUNCATED by wall-clock cap]" if report.truncated else ""))
    if corruption is not None:
        print(f"  corruption matrix: {corruption['checked']} mutants, "
              f"{corruption['rejected']} rejected typed, "
              f"{corruption['healed']} healed, "
              f"{len(corruption['findings'])} findings")
    for sig, ids in sorted(report.buckets.items()):
        shrunk = report.shrunk.get(sig)
        where = (f" -> shrunk to {shrunk['records']} records "
                 f"({shrunk['path']})" if shrunk else "")
        print(f"  bucket {sig}: {len(ids)} case(s){where}")
    print(f"  report: {args.out}/report.json")

    if args.plant_divergence is not None:
        # Self-test mode: success is finding EXACTLY the plant — one
        # engines:* bucket, shrunk within bounds, everything else green.
        plant_buckets = [s for s in report.buckets if s.startswith("engines:")]
        other = [s for s in report.buckets if not s.startswith("engines:")]
        shrunk_ok = any(
            s["records"] <= args.max_shrink_records and not s["exhausted"]
            for sig in plant_buckets
            for s in [report.shrunk.get(sig)] if s is not None)
        if plant_buckets and shrunk_ok and not other:
            print("  planted divergence: found and shrunk (self-test ok)")
            return 0
        print("  planted divergence self-test FAILED "
              f"(found={bool(plant_buckets)}, shrunk={shrunk_ok}, "
              f"unexpected={other})", file=sys.stderr)
        return 4
    return 0 if report.ok else 4


def cmd_serve(args) -> int:
    """Run the campaign service daemon (blocking; SIGTERM drains)."""
    from repro.service import CampaignService, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir, host=args.host, port=args.port,
        workers=args.workers, lease_duration=args.lease_duration,
        max_queue=args.max_queue,
    )
    service = CampaignService(config)
    service.start()
    host, port = service.address
    print(f"repro service on http://{host}:{port} "
          f"(state {config.state_dir}, epoch {service.epoch}, "
          f"{config.workers} workers)", file=sys.stderr)
    try:
        # start() already ran; block until SIGTERM/SIGINT drains us.
        import signal as _signal
        import threading as _threading

        done = _threading.Event()

        def _on_term(signum, frame):
            print("draining: finishing leased jobs, refusing intake",
                  file=sys.stderr)
            service.drain()
            done.set()

        _signal.signal(_signal.SIGTERM, _on_term)
        _signal.signal(_signal.SIGINT, _on_term)
        while not done.wait(timeout=0.5):
            pass
    finally:
        service.stop()
    return 0


def _service_client(args):
    from repro.service import ServiceClient, read_endpoint

    host, port = read_endpoint(args.state_dir)
    return ServiceClient(host, port, retries=args.retries,
                         backoff_base=args.backoff)


def _parse_submit_jobs(args) -> List[Dict]:
    jobs: List[Dict] = []
    for trace in args.trace.split(","):
        for l1d in args.l1d.split(","):
            job = {"trace": trace, "l1d": l1d, "l2": args.l2,
                   "scale": args.scale,
                   "warmup_fraction": args.warmup_fraction}
            if args.mtps:
                job["mtps"] = args.mtps
            jobs.append(job)
    return jobs


def cmd_submit(args) -> int:
    """Submit a campaign to a running daemon (idempotent)."""
    client = _service_client(args)
    resp = client.submit(_parse_submit_jobs(args))
    cid = resp["campaign"]
    print(f"campaign {cid} ({'new' if resp['created'] else 'existing'}): "
          f"{resp['cache_hits']}/{resp['total']} jobs served from the "
          f"result cache")
    if args.wait:
        status = client.poll(cid, timeout=args.wait_timeout)
        print(f"campaign {cid}: {status['state']} {status['counts']}")
        return 0 if status["state"] == "done" else 3
    print(f"poll with: repro poll --state-dir {args.state_dir} {cid}")
    return 0


def cmd_poll(args) -> int:
    """Show (or wait for) a campaign's status."""
    client = _service_client(args)
    if args.wait:
        status = client.poll(args.campaign, timeout=args.wait_timeout)
    else:
        status = client.status(args.campaign)
    print(f"campaign {status['campaign']}: {status['state']} "
          f"{status['counts']}")
    for job in status["jobs"]:
        lease = job.get("lease")
        extra = (f" lease={lease['lease_id']} attempt={job['attempt']}"
                 if lease else "")
        print(f"  {job['status']:9s} {job['key']}{extra}")
    return 0 if status["state"] == "done" else 3


def cmd_fetch(args) -> int:
    """Fetch verified results for a finished campaign (JSON on stdout)."""
    import json as _json

    client = _service_client(args)
    resp = client.results(args.campaign)
    if args.out:
        from pathlib import Path as _Path

        _Path(args.out).write_text(_json.dumps(resp, indent=2,
                                               sort_keys=True))
        print(f"{len(resp['results'])} results written to {args.out}",
              file=sys.stderr)
    else:
        print(_json.dumps(resp, indent=2, sort_keys=True))
    bad = [r for r in resp["results"] if r["status"] != "ok"]
    return 0 if not bad else 3


def _fleet_endpoint(args) -> tuple:
    """``--server host:port`` wins; else endpoint.json discovery."""
    if args.server:
        host, _, port = args.server.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"bad --server {args.server!r}; expected HOST:PORT",
                field="server",
            )
        return host, int(port)
    from repro.service import read_endpoint

    return read_endpoint(args.state_dir)


def cmd_agent(args) -> int:
    """Run a remote fleet agent against a campaign daemon (blocking)."""
    from repro.fleet import FleetAgent

    host, port = _fleet_endpoint(args)
    agent = FleetAgent(host, port, pool=args.pool, name=args.name,
                       retries=args.retries, backoff_base=args.backoff)
    agent.register()
    print(f"agent {agent.agent_id} ({agent.name}) on http://{host}:{port} "
          f"pool={args.pool}; SIGTERM drains", file=sys.stderr)
    agent.run_forever()
    print(f"agent {agent.agent_id} drained: {agent.jobs_done} ok, "
          f"{agent.jobs_failed} failed, {agent.jobs_refused} refused",
          file=sys.stderr)
    return 0


def cmd_fleet(args) -> int:
    """Show a daemon's fleet: agents, states, degraded windows."""
    import json as _json

    from repro.service import ServiceClient

    host, port = _fleet_endpoint(args)
    client = ServiceClient(host, port, retries=args.retries,
                           backoff_base=args.backoff)
    fleet = client.fleet()
    if args.json:
        print(_json.dumps(fleet, indent=2, sort_keys=True))
        return 0
    degraded = "DEGRADED (local pool)" if fleet["degraded"] else "ok"
    print(f"epoch {fleet['epoch']}: {len(fleet['agents'])} known agents, "
          f"{degraded}")
    rows = [[a["agent"], a["name"], a["state"], a["leases_granted"],
             a["results"]["ok"], a["results"]["failed"],
             a["results"]["refused"], a["deaths"], a["rejoins"]]
            for a in fleet["agents"]]
    if rows:
        print(format_table(
            ["agent", "name", "state", "leases", "ok", "failed",
             "refused", "deaths", "rejoins"], rows))
    for window in fleet.get("degraded_windows", []):
        print(f"  degraded window: {window}")
    return 0


def cmd_trace_store(args) -> int:
    """Convert catalog traces to mmap stores / inspect store files."""
    from repro.memory.tracestore import ensure_store, store_info

    if args.action == "convert":
        names: List[str] = []
        if args.suite:
            names.extend(suite_trace_names(args.suite, args.all_graphs))
        for item in args.trace or []:
            names.extend(t for t in item.split(",") if t)
        if not names:
            print("error: pass --trace NAME[,NAME...] and/or --suite",
                  file=sys.stderr)
            return 2
        rows = []
        for name in names:
            path = ensure_store(args.out, name, args.scale)
            info = store_info(path)
            rows.append([name, info["records"],
                         f"{info['bytes'] / 1024:.0f} KB", str(path)])
        print(format_table(["trace", "records", "size", "store"], rows,
                           title=f"trace stores (scale {args.scale})"))
        return 0
    # info
    for path in args.path:
        info = store_info(path)
        for k in ("path", "name", "suite", "records", "bytes", "version"):
            print(f"{k + ':':10s} {info[k]}")
        if info["description"]:
            print(f"{'descr:':10s} {info['description']}")
    return 0


def cmd_storage(args) -> int:
    from repro.core.config import BertiConfig

    rows = [
        [name, round(storage_kb(name), 2)]
        for name in available() if name != "none"
    ]
    print(format_table(["prefetcher", "storage KB"], rows,
                       title="Hardware budgets"))
    print("\nBerti breakdown (Table I):")
    for k, v in BertiConfig().storage_breakdown_kb().items():
        print(f"  {k:22s} {v:5.2f} KB")
    return 0


def _add_runner_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("runner (resilience/parallelism)")
    g.add_argument("--workers", type=int, default=0,
                   help="worker processes; 0 = in-process serial, "
                        "-1 = one per CPU (default 0)")
    g.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock seconds (requires --workers >= 1)")
    g.add_argument("--retries", type=int, default=1,
                   help="extra attempts for transient failures (default 1)")
    g.add_argument("--journal", default=None,
                   help="JSONL checkpoint journal path")
    g.add_argument("--resume", action="store_true",
                   help="replay completed jobs from --journal")
    g.add_argument("--inject", action="append", default=None,
                   metavar="KIND:TRACE[:PERIOD]",
                   help="inject a fault (crash/hang/corrupt/mshr_full/"
                        "pq_full/flaky/balloon) into every job of TRACE")
    g.add_argument("--trace-store", default=None, metavar="DIR",
                   help="convert each unique trace once into DIR and "
                        "have workers mmap the store read-only instead "
                        "of regenerating the trace per job "
                        "(docs/runner.md)")
    s = p.add_argument_group("supervision (docs/runner.md)")
    s.add_argument("--supervise", action="store_true",
                   help="run under the campaign supervisor: heartbeat "
                        "liveness, resource guards, circuit breakers, "
                        "graceful Ctrl-C drain (requires --workers >= 1)")
    s.add_argument("--heartbeat-every", type=int, default=5000,
                   metavar="N", help="worker progress ping every N "
                   "simulated accesses (default 5000; 0 disables)")
    s.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   metavar="SEC", help="preempt a worker after SEC "
                   "seconds without progress (default 10)")
    s.add_argument("--quarantine-after", type=int, default=3, metavar="K",
                   help="open a (trace, prefetcher) circuit breaker "
                        "after K consecutive failures (default 3)")
    s.add_argument("--manifest", default=None, metavar="PATH",
                   help="campaign manifest JSON (default: "
                        "<journal>.manifest.json)")


def _add_engine_args(p) -> None:
    """Simulator inner-loop selection, shared by run/compare/suite."""
    g = p.add_argument_group("engine (docs/performance.md)")
    g.add_argument("--engine", default="classic",
                   choices=["classic", "batched", "native"],
                   help="simulator inner loop: classic per-record "
                        "dispatch, the batched columnar loop, or the "
                        "native C span kernel (both bit-identical, "
                        "faster on stock configs)")
    g.add_argument("--chunk-size", type=int, default=0, metavar="N",
                   help="batched/native span length in records "
                        "(0 = engine default)")
    g.add_argument("--native", default="auto",
                   choices=["auto", "force", "off"],
                   help="native-backend policy with --engine native: "
                        "auto demotes to the batched path when the C "
                        "kernel is unavailable, force errors instead, "
                        "off pins the batched fallback")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Berti (MICRO 2022) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list prefetchers and traces")

    info = sub.add_parser("trace-info", help="describe a trace")
    info.add_argument("--trace", required=True)
    info.add_argument("--scale", type=float, default=0.5)

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("--trace", required=True)
    run.add_argument("--l1d", default="berti")
    run.add_argument("--l2", default="none")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--profile", nargs="?", const="", default=None,
                     metavar="STATS_FILE",
                     help="run under cProfile; print the hot-function "
                          "table and optionally dump raw stats to "
                          "STATS_FILE")
    run.add_argument("--profile-top", type=int, default=15,
                     help="rows in the --profile hot-function table")
    run.add_argument("--mtps", type=int, default=None,
                     help="DRAM transfer rate (6400/3200/1600)")
    _add_engine_args(run)
    g = run.add_argument_group("sanitizer / durability (docs/sanitizer.md)")
    g.add_argument("--sanitize", action="store_true",
                   help="run with SimSan runtime invariant checking")
    g.add_argument("--sanitize-every", type=int, default=64,
                   metavar="N", help="check invariants every N accesses "
                   "(default 64)")
    g.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                   help="write a crash-durable snapshot every N records "
                        "(requires --snapshot-dir)")
    g.add_argument("--snapshot-dir", default=None,
                   help="directory for snap-<index>.ckpt files")
    g.add_argument("--resume-from", default=None, metavar="PATH",
                   help="resume from a snapshot file (or the newest "
                        "snapshot in a directory); bit-identical to the "
                        "uninterrupted run")

    cmp_ = sub.add_parser("compare", help="compare prefetchers on a trace")
    cmp_.add_argument("--trace", required=True)
    cmp_.add_argument("--l1d", default="ip_stride,mlop,ipcp,berti")
    cmp_.add_argument("--baseline", default="ip_stride")
    cmp_.add_argument("--scale", type=float, default=0.5)
    cmp_.add_argument("--mtps", type=int, default=None)
    _add_engine_args(cmp_)
    _add_runner_args(cmp_)

    suite = sub.add_parser("suite", help="geomean speedups over a suite")
    suite.add_argument("--suite", default="spec17",
                       choices=["spec17", "gap", "cloudsuite"])
    suite.add_argument("--l1d", default="mlop,ipcp,berti")
    suite.add_argument("--baseline", default="ip_stride")
    suite.add_argument("--scale", type=float, default=0.4)
    suite.add_argument("--all-graphs", action="store_true")
    suite.add_argument("--mtps", type=int, default=None)
    _add_engine_args(suite)
    _add_runner_args(suite)

    san = sub.add_parser(
        "sancheck",
        help="differential check vs. the pure-reference engine",
    )
    san.add_argument("--quick", action="store_true",
                     help="sweep every registry prefetcher plus one "
                          "multicore mix on a small synthetic trace")
    san.add_argument("--records", type=int, default=1200,
                     help="records in the --quick synthetic trace")
    san.add_argument("--trace", default="mcf_s-1554B",
                     help="catalog trace for a single targeted check")
    san.add_argument("--scale", type=float, default=0.2)
    san.add_argument("--l1d", default="berti")
    san.add_argument("--l2", default="none")
    san.add_argument("--seed-divergence", type=int, default=None,
                     metavar="N",
                     help="perturb the optimized engine at access N; the "
                          "oracle must localise the divergence to N")
    san.add_argument("--engine", default="classic",
                     choices=["classic", "batched", "native", "both",
                              "all"],
                     help="which differential to run: classic = optimized "
                          "vs pure-reference oracle; batched = batched vs "
                          "classic inner loop, digests compared at every "
                          "chunk boundary and the first divergent access "
                          "localised; native = the C span kernel vs the "
                          "classic loop, same digest cadence (skipped "
                          "with a note when no compiler is available); "
                          "both = classic + batched; all = everything")
    san.add_argument("--chunk-size", type=int, default=0, metavar="N",
                     help="batched/native chunk length for --engine "
                          "batched/native/both/all (0 = engine default)")

    chaos = sub.add_parser(
        "chaos",
        help="hostile-host and network scenarios against the runner "
             "and the campaign service",
    )
    chaos.add_argument("--quick", action="store_true",
                       help="CI subset: disk-full, sigkill, hung-worker, "
                            "the four service scenarios, and "
                            "duplicate-delivery from the fleet set")
    chaos.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run one scenario by name (repeatable): "
                            "disk-full, sigkill, hung-worker, balloon, "
                            "clock-skew, service-sigkill, "
                            "client-disconnect, cache-corruption, "
                            "duplicate-submit, agent-sigkill, "
                            "network-partition, duplicate-delivery, "
                            "digest-mismatch")
    chaos.add_argument("--workdir", default=None,
                       help="directory for scenario artifacts "
                            "(default: a fresh temp dir)")

    ts = sub.add_parser(
        "trace-store",
        help="convert traces to mmap-backed stores / inspect them",
    )
    ts.add_argument("action", choices=["convert", "info"],
                    help="convert catalog traces, or describe store files")
    ts.add_argument("--trace", action="append", default=None,
                    metavar="NAME[,NAME...]",
                    help="catalog trace(s) to convert (repeatable)")
    ts.add_argument("--suite", default=None,
                    choices=["spec17", "gap", "cloudsuite"],
                    help="convert every trace of a suite")
    ts.add_argument("--all-graphs", action="store_true",
                    help="with --suite gap: all graphs, not just kron/urand")
    ts.add_argument("--scale", type=float, default=0.5)
    ts.add_argument("--out", default="traces/store", metavar="DIR",
                    help="store directory (default traces/store)")
    ts.add_argument("path", nargs="*", default=[],
                    help="store files to describe (info action)")

    serve = sub.add_parser(
        "serve",
        help="run the durable campaign-service daemon (docs/service.md)",
    )
    serve.add_argument("--state-dir", default="service-state",
                       help="WAL + result cache + endpoint.json directory "
                            "(default service-state); restarting against "
                            "the same directory resumes the full queue")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral; the bound "
                            "port is recorded in endpoint.json)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent simulation workers (default 2)")
    serve.add_argument("--lease-duration", type=float, default=30.0,
                       metavar="SEC",
                       help="job lease expiry without heartbeat progress "
                            "(default 30)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="pending jobs before submissions get 429 "
                            "(default 64)")

    def _client_args(p_: argparse.ArgumentParser) -> None:
        p_.add_argument("--state-dir", default="service-state",
                        help="daemon state dir holding endpoint.json")
        p_.add_argument("--retries", type=int, default=5,
                        help="client retry budget for connection errors "
                             "and 5xx/429 (default 5)")
        p_.add_argument("--backoff", type=float, default=0.1,
                        metavar="SEC",
                        help="base backoff; doubles per attempt with "
                             "jitter, Retry-After wins (default 0.1)")

    submit = sub.add_parser(
        "submit", help="submit a campaign to a running daemon (idempotent)",
    )
    _client_args(submit)
    submit.add_argument("--trace", required=True,
                        metavar="NAME[,NAME...]")
    submit.add_argument("--l1d", default="berti", metavar="PF[,PF...]")
    submit.add_argument("--l2", default="none")
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--mtps", type=int, default=None)
    submit.add_argument("--warmup-fraction", type=float, default=0.25)
    submit.add_argument("--wait", action="store_true",
                        help="block until the campaign resolves")
    submit.add_argument("--wait-timeout", type=float, default=600.0)

    poll = sub.add_parser("poll", help="status of a submitted campaign")
    _client_args(poll)
    poll.add_argument("campaign", help="campaign id from repro submit")
    poll.add_argument("--wait", action="store_true",
                      help="block until the campaign resolves")
    poll.add_argument("--wait-timeout", type=float, default=600.0)

    fetch = sub.add_parser(
        "fetch", help="fetch checksum-verified results for a campaign",
    )
    _client_args(fetch)
    fetch.add_argument("campaign", help="campaign id from repro submit")
    fetch.add_argument("--out", default=None, metavar="PATH",
                       help="write the results JSON here instead of stdout")

    def _fleet_args(p_: argparse.ArgumentParser) -> None:
        p_.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="daemon address (multi-host); default: "
                             "discover via --state-dir/endpoint.json")
        p_.add_argument("--state-dir", default="service-state",
                        help="daemon state dir holding endpoint.json "
                             "(same-host discovery)")
        p_.add_argument("--retries", type=int, default=5,
                        help="request retry budget (default 5)")
        p_.add_argument("--backoff", type=float, default=0.1,
                        metavar="SEC", help="base retry backoff "
                        "(default 0.1)")

    agent = sub.add_parser(
        "agent",
        help="remote fleet worker: lease jobs from a campaign daemon "
             "(docs/service.md)",
    )
    _fleet_args(agent)
    agent.add_argument("--pool", type=int, default=1,
                       help="concurrent jobs this agent runs (default 1)")
    agent.add_argument("--name", default="",
                       help="agent name in the daemon's registry "
                            "(default agent-<hostname>)")

    fleet = sub.add_parser(
        "fleet", help="show a daemon's agent registry and degraded windows",
    )
    _fleet_args(fleet)
    fleet.add_argument("--json", action="store_true",
                       help="raw JSON instead of a table")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign (docs/fuzzing.md)",
    )
    fuzz.add_argument("--budget-seconds", type=float, default=60,
                      metavar="SEC",
                      help="time budget; converted to a fixed case count "
                           "at --rate so the case list is deterministic "
                           "(default 60)")
    fuzz.add_argument("--seed", default="0", metavar="N|from-git-sha",
                      help="campaign seed: an integer, or 'from-git-sha' "
                           "to derive it from the current commit")
    fuzz.add_argument("--rate", type=float, default=2.0, metavar="CPS",
                      help="nominal cases/second used to size the "
                           "campaign (default 2.0)")
    fuzz.add_argument("--out", default="fuzz-out", metavar="DIR",
                      help="report + shrunk-case output directory "
                           "(default fuzz-out)")
    fuzz.add_argument("--replay", default=None, metavar="DIR",
                      help="replay a corpus directory instead of "
                           "generating cases (e.g. tests/corpus)")
    fuzz.add_argument("--plant-divergence", type=int, default=None,
                      metavar="N",
                      help="self-test: plant an engine divergence at "
                           "access N; exit 0 iff it is found, shrunk, "
                           "and nothing else fires")
    fuzz.add_argument("--skip-corruption", action="store_true",
                      help="skip the persisted-format corruption matrix")
    fuzz.add_argument("--max-shrink-records", type=int, default=64,
                      metavar="N",
                      help="records a shrunk repro may keep before the "
                           "shrinker reports exhaustion (default 64)")

    sub.add_parser("storage", help="hardware budgets incl. Table I")
    return p


COMMANDS = {
    "list": cmd_list,
    "trace-info": cmd_trace_info,
    "run": cmd_run,
    "sancheck": cmd_sancheck,
    "compare": cmd_compare,
    "suite": cmd_suite,
    "chaos": cmd_chaos,
    "fuzz": cmd_fuzz,
    "storage": cmd_storage,
    "trace-store": cmd_trace_store,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "poll": cmd_poll,
    "fetch": cmd_fetch,
    "agent": cmd_agent,
    "fleet": cmd_fleet,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
