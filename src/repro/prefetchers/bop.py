"""Best-Offset Prefetching (BOP) — Michaud, HPCA 2016; DPC-2 winner.

BOP learns one *global* offset for the whole program phase.  A recent
requests (RR) table remembers the base addresses of recent fills; during
a learning phase each candidate offset *d* earns a point whenever a
demand access to line *X* finds *X − d* in the RR table (meaning a
prefetch with offset *d*, issued at the access to *X − d*, would have
been timely — the RR table is filled at completion time, which is how
BOP folds timeliness into its score).  After a fixed number of rounds
the best-scoring offset becomes the prefetch offset.

The paper uses BOP as the canonical global-delta prefetcher in its
motivation (Figure 3: the global +62 offset BOP picks for mcf covers
almost nothing, while per-IP local deltas cover most accesses).
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import (
    FILL_L1,
    AccessInfo,
    FillInfo,
    Prefetcher,
    PrefetchRequest,
)

# Michaud's offset candidate list: numbers of the form 2^i * 3^j * 5^k up
# to 256 (plus small primes' multiples), as in the original proposal.
DEFAULT_OFFSETS = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
    36, 40, 45, 48, 50, 54, 60, 64, 72, 75, 80, 81, 90, 96, 100, 108, 120,
    125, 128, 135, 144, 150, 160, 162, 180, 192, 200, 216, 225, 240, 243,
    250, 256,
]


class BOPPrefetcher(Prefetcher):
    """Degree-one global best-offset prefetcher."""

    name = "bop"
    level = "l1d"

    SCORE_MAX = 31
    ROUND_MAX = 100
    BAD_SCORE = 1

    def __init__(
        self,
        offsets: List[int] | None = None,
        rr_entries: int = 256,
    ) -> None:
        self.offsets = list(offsets or DEFAULT_OFFSETS)
        self.rr_entries = rr_entries
        self._rr: dict = {}           # line -> insertion order (bounded)
        self._rr_order = 0
        self._scores = [0] * len(self.offsets)
        self._round = 0
        self._test_index = 0
        self.best_offset = 1
        self._prefetch_on = True

    # ------------------------------------------------------------------

    def _rr_insert(self, line: int) -> None:
        # dict preserves insertion order, giving O(1) FIFO eviction.
        self._rr_order += 1
        self._rr.pop(line, None)
        self._rr[line] = self._rr_order
        if len(self._rr) > self.rr_entries:
            del self._rr[next(iter(self._rr))]

    def on_fill(self, fill: FillInfo) -> List[PrefetchRequest]:
        # RR table records the *base* address of the fill: line - offset
        # used for the prefetch (or the line itself for demand fills);
        # inserting at fill time is what encodes timeliness.
        base = fill.line - (self.best_offset if fill.was_prefetch else 0)
        self._rr_insert(base)
        return []

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        if not access.hit or access.prefetch_hit:
            self._learn(access.line)
        if not self._prefetch_on:
            return []
        return [
            PrefetchRequest(
                line=access.line + self.best_offset, fill_level=FILL_L1
            )
        ]

    def _learn(self, line: int) -> None:
        """One learning step: test the next candidate offset."""
        d = self.offsets[self._test_index]
        if (line - d) in self._rr:
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= self.SCORE_MAX:
                self._end_phase()
                return
        self._test_index += 1
        if self._test_index >= len(self.offsets):
            self._test_index = 0
            self._round += 1
            if self._round >= self.ROUND_MAX:
                self._end_phase()

    def _end_phase(self) -> None:
        best = max(range(len(self.offsets)), key=self._scores.__getitem__)
        best_score = self._scores[best]
        self.best_offset = self.offsets[best]
        # Original BOP turns prefetching off when even the best offset
        # scores poorly.
        self._prefetch_on = best_score > self.BAD_SCORE
        self._scores = [0] * len(self.offsets)
        self._round = 0
        self._test_index = 0

    def storage_bits(self) -> int:
        # RR table (256 x 12-bit hashed address) + per-offset 5-bit scores
        # + control state.
        return self.rr_entries * 12 + len(self.offsets) * 5 + 32

    def reset(self) -> None:
        self._rr.clear()
        self._rr_order = 0
        self._scores = [0] * len(self.offsets)
        self._round = 0
        self._test_index = 0
        self.best_offset = 1
        self._prefetch_on = True
