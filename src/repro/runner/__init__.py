"""Resilient experiment runner: fault-isolated parallel execution with
retry, timeout, and checkpoint/resume.

Quick use::

    from repro.runner import ExperimentRunner, RunnerConfig, JobSpec

    jobs = [JobSpec(trace="mcf_s-1554B", l1d=pf, scale=0.3)
            for pf in ("ip_stride", "mlop", "berti")]
    runner = ExperimentRunner(RunnerConfig(
        workers=4, timeout=300, retries=1, journal_path="suite.jsonl",
    ))
    suite = runner.run(jobs)
    print(suite.banner())            # e.g. "3/3 jobs completed"
    for run in suite.completed:
        print(run.key, run.result.ipc)

See ``docs/runner.md`` for the journal format, the failure taxonomy,
and the fault-injection harness.
"""

from repro.errors import (
    ConfigError,
    JobTimeout,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.runner.executor import ExperimentRunner, RunnerConfig
from repro.runner.faultinject import FaultSpec
from repro.runner.invariants import check_invariants
from repro.runner.jobs import (
    CallableJob,
    CompletedRun,
    FailedRun,
    JobSpec,
    SuiteResult,
    run_callable,
)
from repro.runner.journal import Journal
from repro.runner.suite import build_matrix_jobs, per_trace_results
from repro.runner.worker import run_job

__all__ = [
    "CallableJob",
    "CompletedRun",
    "ConfigError",
    "ExperimentRunner",
    "FailedRun",
    "FaultSpec",
    "JobSpec",
    "JobTimeout",
    "Journal",
    "ReproError",
    "RunnerConfig",
    "SimulationError",
    "SuiteResult",
    "TraceError",
    "build_matrix_jobs",
    "check_invariants",
    "per_trace_results",
    "run_callable",
    "run_job",
]
