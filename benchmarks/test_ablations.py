"""Ablations of Berti's individual design choices (beyond the paper's own
sensitivity studies; DESIGN.md §5).

* timeliness filter in the history search (§III-A),
* MSHR-occupancy gate on L1D fills (§III-B),
* cross-page prefetching (§IV-J: disabling drops SPEC 1.16 -> 1.10),
* the 12-bit latency field width (§IV-J: 4 bits drops 1.16 -> 1.07).
"""

from dataclasses import replace

from common import SCALE, once, save_report

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.engine import simulate
from repro.workloads.spec_like import spec17_suite


class _NoTimelinessBerti(BertiPrefetcher):
    """Berti variant whose history search ignores timeliness: every
    recorded same-IP delta counts, timely or not."""

    name = "berti_no_timeliness"

    def __init__(self, config=None):
        super().__init__(config)
        orig = self.history.search_timely

        def search_all(ip, line, demand_time, latency):
            return orig(ip, line, demand_time, 0)

        self.history.search_timely = search_all


def _sweep(traces, bases, variants):
    rows = []
    for name, pf_factory in variants:
        ratios = [
            simulate(t, l1d_prefetcher=pf_factory()).speedup_over(
                bases[t.name]
            )
            for t in traces
        ]
        rows.append([name, geomean(ratios)])
    return rows


def test_ablations(benchmark):
    def compute():
        traces = spec17_suite(SCALE * 0.6)
        bases = {
            t.name: simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
            for t in traces
        }
        cfg = BertiConfig()
        variants = [
            ("berti (default)", lambda: BertiPrefetcher(cfg)),
            ("no timeliness filter", lambda: _NoTimelinessBerti(cfg)),
            ("no MSHR gate",
             lambda: BertiPrefetcher(replace(cfg, mshr_watermark=1.01))),
            ("no cross-page prefetch",
             lambda: BertiPrefetcher(replace(cfg, cross_page=False))),
            ("4-bit latency field",
             lambda: BertiPrefetcher(replace(cfg, latency_bits=4))),
        ]
        return _sweep(traces, bases, variants)

    rows = once(benchmark, compute)
    save_report(
        "ablations",
        format_table(
            ["variant", "geomean speedup (SPEC17)"], rows,
            title=(
                "Ablations — Berti design choices\n"
                "(paper §IV-J: cross-page off 1.16->1.10; 4-bit latency"
                " 1.16->1.07)"
            ),
        ),
    )

    by = dict(rows)
    default = by["berti (default)"]
    assert default > 1.0
    # The timeliness filter is load-bearing: removing it floods the PQ
    # with late deltas and costs performance.
    assert by["no timeliness filter"] <= default + 0.02
    # Cross-page prefetching contributes (paper: −6 % when disabled).
    assert by["no cross-page prefetch"] <= default + 0.01
    # A 4-bit latency field overflows constantly and hurts learning.
    assert by["4-bit latency field"] <= default + 0.01
