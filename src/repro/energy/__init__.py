"""Dynamic-energy model of the memory hierarchy (CACTI-style)."""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
