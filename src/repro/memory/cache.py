"""Set-associative cache model with prefetch metadata.

Each cache line carries, besides tag/valid/dirty, the metadata Berti's
hardware extension needs (paper Figure 5, gray parts):

* ``arrival_cycle`` — cycle at which the fill data actually arrives.  A
  demand that touches the line earlier observes a *late* prefetch and
  stalls for the residual latency.
* ``prefetched`` — line was brought in by a prefetch and has not yet been
  demanded.  Cleared on the first demand hit (which is the moment Berti
  trains, because that hit is a miss that *would have occurred* in the
  baseline).
* ``pf_latency`` — the 12-bit fetch-latency field per L1D line.  Zero
  means "overflowed or already consumed"; Berti skips training then.

The cache is timing-agnostic: the hierarchy decides latencies, the cache
just tracks contents and replacement state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.memory.replacement import DRRIPPolicy, ReplacementPolicy, make_policy


@dataclass
class CacheLine:
    """State of one cache way."""

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    prefetched: bool = False
    arrival_cycle: int = 0
    pf_latency: int = 0
    ip: int = 0          # IP of the access that triggered the fill
    vline: int = -1      # virtual line address (for L1D prefetcher training)
    pf_origin: str = ""  # "l1d" or "l2": which prefetcher issued the fill


@dataclass
class CacheStats:
    """Per-cache event counters, split demand vs. prefetch."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_fills: int = 0
    demand_fills: int = 0
    useful_prefetches: int = 0      # prefetched lines demanded at least once
    late_prefetches: int = 0        # demanded before the data arrived
    useless_prefetches: int = 0     # prefetched lines evicted unused
    writebacks: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Parameters mirror Table II of the paper; ``latency`` is the hit latency
    in cycles, used by the hierarchy, not by the cache itself.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        line_size: int = 64,
        replacement: str = "lru",
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"ways*line ({ways}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        # Presence index for O(1) probes: line -> way (set is line-derived).
        self._where: dict = {}
        # Valid lines per set, to skip the invalid-way scan when full.
        self._valid_count: List[int] = [0] * self.num_sets
        self.policy: ReplacementPolicy = make_policy(
            replacement, self.num_sets, ways
        )
        self.stats = CacheStats()
        # Optional observer invoked with the victim line on eviction.
        self.eviction_hook: Optional[Callable[[CacheLine], None]] = None

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def _find(self, line: int) -> Tuple[int, Optional[int]]:
        return self.set_index(line), self._where.get(line)

    def probe(self, line: int) -> bool:
        """Presence check with no side effects (no replacement update)."""
        return line in self._where

    def peek(self, line: int) -> Optional[CacheLine]:
        """Return the line's metadata without touching replacement state."""
        sidx, way = self._find(line)
        if way is None:
            return None
        return self.sets[sidx][way]

    def lookup(self, line: int, is_demand: bool = True) -> Optional[CacheLine]:
        """Access the cache; updates replacement state and hit/miss stats.

        Returns the :class:`CacheLine` on a hit, ``None`` on a miss.  The
        caller is responsible for interpreting the prefetch metadata (late
        vs. timely) and clearing ``prefetched`` via :meth:`demand_touch`.
        """
        sidx, way = self._find(line)
        if is_demand:
            self.stats.demand_accesses += 1
        if way is None:
            if is_demand:
                self.stats.demand_misses += 1
                if isinstance(self.policy, DRRIPPolicy):
                    self.policy.record_miss(sidx)
            return None
        if is_demand:
            self.stats.demand_hits += 1
        self.policy.on_hit(sidx, way)
        return self.sets[sidx][way]

    def demand_touch(self, cl: CacheLine, now: int) -> Tuple[bool, bool, int]:
        """Consume a demand hit on ``cl``.

        Returns ``(was_prefetched, was_late, residual_wait)``: whether this
        was the first demand to a prefetched line, whether that prefetch
        was late, and the extra cycles the demand must wait for the data.
        """
        residual = max(0, cl.arrival_cycle - now)
        was_prefetched = cl.prefetched
        was_late = was_prefetched and residual > 0
        if was_prefetched:
            self.stats.useful_prefetches += 1
            if was_late:
                self.stats.late_prefetches += 1
            cl.prefetched = False
        return was_prefetched, was_late, residual

    def fill(
        self,
        line: int,
        now: int,
        arrival_cycle: int,
        is_prefetch: bool,
        ip: int = 0,
        vline: int = -1,
        pf_latency: int = 0,
        pf_origin: str = "",
    ) -> Optional[CacheLine]:
        """Install ``line``; returns the evicted line if one was displaced.

        If the line is already present (e.g. a prefetch raced a demand),
        the existing entry is refreshed instead of allocating a new way.
        """
        sidx, way = self._find(line)
        victim: Optional[CacheLine] = None
        if way is None:
            way = self._pick_victim(sidx)
            old = self.sets[sidx][way]
            if old.valid:
                if old.prefetched:
                    self.stats.useless_prefetches += 1
                if old.dirty:
                    self.stats.writebacks += 1
                if old.dirty or self.eviction_hook is not None:
                    # Copy only when someone will look at the victim.
                    victim = CacheLine(
                        tag=old.tag, valid=True, dirty=old.dirty,
                        prefetched=old.prefetched, ip=old.ip,
                        vline=old.vline, pf_origin=old.pf_origin,
                    )
                    if self.eviction_hook is not None:
                        self.eviction_hook(victim)
                del self._where[old.tag]
            else:
                self._valid_count[sidx] += 1
            cl = self.sets[sidx][way]
            self._where[line] = way
            cl.tag = line
            cl.valid = True
            cl.dirty = False
            cl.prefetched = is_prefetch
            cl.arrival_cycle = arrival_cycle
            cl.pf_latency = pf_latency
            cl.ip = ip
            cl.vline = vline
            cl.pf_origin = pf_origin if is_prefetch else ""
            self.policy.on_fill(sidx, way)
        else:
            cl = self.sets[sidx][way]
            # Refresh arrival if the new copy arrives earlier.
            cl.arrival_cycle = min(cl.arrival_cycle, arrival_cycle)
            if not is_prefetch:
                cl.prefetched = False
        if is_prefetch:
            self.stats.prefetch_fills += 1
        else:
            self.stats.demand_fills += 1
        return victim

    def _pick_victim(self, sidx: int) -> int:
        if self._valid_count[sidx] >= self.ways:
            return self.policy.victim(sidx)
        for way, cl in enumerate(self.sets[sidx]):
            if not cl.valid:
                return way
        return self.policy.victim(sidx)  # defensive; count says full

    def mark_dirty(self, line: int) -> None:
        """Flag ``line`` dirty (stores); no-op if absent."""
        sidx, way = self._find(line)
        if way is not None:
            self.sets[sidx][way].dirty = True

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns True when it was present."""
        sidx, way = self._find(line)
        if way is None:
            return False
        self.sets[sidx][way] = CacheLine()
        del self._where[line]
        self._valid_count[sidx] -= 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.ways

    def occupancy(self) -> int:
        """Number of valid lines (mostly for tests)."""
        return sum(cl.valid for s in self.sets for cl in s)

    def reset_stats(self) -> None:
        self.stats.reset()
