"""Figure 1: prefetch accuracy and normalised dynamic energy of the
state-of-the-art prefetchers, averaged over memory-intensive SPEC-like
and GAP-like traces.

Paper reference: accuracies — IPCP ~50.6 %, MLOP ~62.4 %, Berti ~87 %;
dynamic energy overhead up to +30 % (SPEC) / +87 % (GAP) for the
competitors vs. +9 % / +14 % for Berti.
"""

from common import gap_traces, once, run, run_matrix, save_report, spec_traces

from repro.analysis.metrics import average_accuracy
from repro.analysis.report import format_table
from repro.energy import EnergyModel

PREFETCHERS = ["mlop", "ipcp", "berti"]


def test_fig01_accuracy_and_energy(benchmark):
    def compute():
        em = EnergyModel()
        rows = []
        for suite_name, traces in (("SPEC17", spec_traces()),
                                   ("GAP", gap_traces())):
            matrix = run_matrix(traces, ["none"] + PREFETCHERS)
            for pf in PREFETCHERS:
                results = [matrix[t.name][pf] for t in traces]
                bases = [matrix[t.name]["none"] for t in traces]
                acc = average_accuracy(results)
                energy = sum(
                    em.normalised(r, b) for r, b in zip(results, bases)
                ) / len(results)
                rows.append([suite_name, pf, acc, energy])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig01_accuracy_energy",
        format_table(
            ["suite", "prefetcher", "accuracy", "energy vs no-pf"],
            rows,
            title=(
                "Figure 1 — accuracy and normalised dynamic energy\n"
                "(paper: Berti ~87% accurate, lowest energy overhead)"
            ),
        ),
    )

    by = {(s, p): (a, e) for s, p, a, e in rows}
    for suite in ("SPEC17", "GAP"):
        # Berti is the most accurate prefetcher on both suites.
        accs = {p: by[(suite, p)][0] for p in PREFETCHERS}
        assert accs["berti"] == max(accs.values()), (suite, accs)
        assert accs["berti"] > 0.6, (suite, accs)
    # ... and its energy overhead is the smallest on SPEC.
    energies = {p: by[("SPEC17", p)][1] for p in PREFETCHERS}
    assert energies["berti"] == min(energies.values()), energies
