"""Berti's table of deltas (paper §III-C, Figures 5 and 6).

A 16-entry fully-associative FIFO cache tagged by a 10-bit hash of the
IP.  Each entry holds a 4-bit search counter and an array of 16 deltas,
each with a 4-bit coverage counter and a 2-bit status:

* ``L1D_PREF``      — coverage crossed the high watermark (65 %): prefetch
  and fill up to the L1D (when the L1D MSHR is below its watermark).
* ``L2_PREF``       — coverage between the medium (35 %) and high
  watermarks: prefetch, fill up to L2.
* ``L2_PREF_REPL``  — same as ``L2_PREF`` but the coverage was below 50 %,
  so the slot is an eviction candidate for newly seen deltas.
* ``NO_PREF``       — low coverage: keep learning, do not prefetch.

Statuses are assigned when the search counter overflows (16 searches);
the counter and coverages are then reset and a new learning phase begins.
While the first phase is still warming up, deltas are used for L1D
prefetching with a stricter 80 % watermark once at least eight searches
have been gathered.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import BertiConfig

NO_PREF = 0
L1D_PREF = 1
L2_PREF = 2
L2_PREF_REPL = 3

STATUS_NAMES = {
    NO_PREF: "no_pref",
    L1D_PREF: "l1d_pref",
    L2_PREF: "l2_pref",
    L2_PREF_REPL: "l2_pref_repl",
}


class _DeltaSlot:
    __slots__ = ("valid", "delta", "coverage", "status")

    def __init__(self) -> None:
        self.valid = False
        self.delta = 0
        self.coverage = 0
        self.status = NO_PREF


class _Entry:
    __slots__ = (
        "valid", "tag", "counter", "slots", "order", "warmed_up",
        "by_delta", "pf_cache",
    )

    def __init__(self, num_deltas: int) -> None:
        self.valid = False
        self.tag = 0
        self.counter = 0
        self.slots = [_DeltaSlot() for _ in range(num_deltas)]
        self.order = 0
        self.warmed_up = False  # first learning phase completed
        # delta -> occupied slot, mirroring the valid slots (O(1) lookup
        # in record_search instead of a scan per timely delta).
        self.by_delta: dict = {}
        # Memoised prefetch_deltas() result for warmed-up entries;
        # invalidated whenever a status or a stored delta changes.
        self.pf_cache: Optional[List[Tuple[int, int]]] = None


class DeltaTable:
    """Per-IP delta coverage accumulation and prefetch-status selection."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        self._entries = [
            _Entry(cfg.deltas_per_entry) for _ in range(cfg.delta_table_entries)
        ]
        self._by_tag: dict = {}  # tag -> _Entry, for O(1) lookup
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self._tag_mask = (1 << cfg.delta_tag_bits) - 1
        self.phase_completions = 0
        self.discarded_deltas = 0

    # ------------------------------------------------------------------

    def _tag_of(self, ip: int) -> int:
        """10-bit IP hash (folded XOR, cheap in hardware)."""
        h = ip
        h ^= h >> 10
        h ^= h >> 20
        return h & self._tag_mask

    def _find(self, tag: int) -> Optional[_Entry]:
        return self._by_tag.get(tag)

    def _allocate(self, tag: int) -> _Entry:
        # FIFO replacement: a circular pointer over the entries.
        victim = self._entries[self._fifo_ptr]
        self._fifo_ptr = (self._fifo_ptr + 1) % len(self._entries)
        if victim.valid:
            self._by_tag.pop(victim.tag, None)
        self._fifo_clock += 1
        victim.valid = True
        victim.tag = tag
        victim.counter = 0
        victim.order = self._fifo_clock
        victim.warmed_up = False
        victim.by_delta.clear()
        victim.pf_cache = None
        for slot in victim.slots:
            slot.valid = False
            slot.delta = 0
            slot.coverage = 0
            slot.status = NO_PREF
        self._by_tag[tag] = victim
        return victim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def record_search(self, ip: int, timely_deltas: List[int]) -> None:
        """Accumulate one history-search result for ``ip``.

        Bumps the entry's search counter, increments coverage of each
        timely delta (inserting unseen deltas when an evictable slot
        exists), and closes the learning phase when the counter overflows.
        """
        cfg = self.config
        tag = self._tag_of(ip)
        entry = self._find(tag)
        if entry is None:
            entry = self._allocate(tag)

        entry.counter += 1
        coverage_cap = (1 << cfg.coverage_bits) - 1
        by_delta = entry.by_delta
        for delta in timely_deltas:
            slot = by_delta.get(delta)
            if slot is not None:
                if slot.coverage < coverage_cap:
                    slot.coverage += 1
                continue
            slot = self._victim_slot(entry)
            if slot is None:
                self.discarded_deltas += 1
                continue
            if slot.valid:
                del by_delta[slot.delta]
                if slot.status != NO_PREF:
                    # Evicting a prefetching (L2_PREF_REPL) slot changes
                    # the selected set for warmed-up entries.
                    entry.pf_cache = None
            slot.valid = True
            slot.delta = delta
            slot.coverage = 1
            slot.status = NO_PREF
            by_delta[delta] = slot

        if entry.counter >= cfg.counter_max:
            self._close_phase(entry)

    @staticmethod
    def _victim_slot(entry: _Entry) -> Optional[_DeltaSlot]:
        """Slot for a newly seen delta: an empty slot, else the
        lowest-coverage slot whose status allows replacement."""
        empty = next((s for s in entry.slots if not s.valid), None)
        if empty is not None:
            return empty
        candidates = [
            s for s in entry.slots if s.status in (NO_PREF, L2_PREF_REPL)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.coverage)

    def _close_phase(self, entry: _Entry) -> None:
        """Counter overflowed: assign statuses, reset for the next phase."""
        cfg = self.config
        self.phase_completions += 1
        high = cfg.high_watermark * cfg.counter_max
        medium = cfg.medium_watermark * cfg.counter_max
        repl = cfg.repl_watermark * cfg.counter_max

        promoted = 0
        # Consider highest-coverage deltas first so the 12-delta bound
        # keeps the best ones.
        for slot in sorted(
            (s for s in entry.slots if s.valid),
            key=lambda s: s.coverage,
            reverse=True,
        ):
            if slot.coverage > high and promoted < cfg.max_prefetch_deltas:
                slot.status = L1D_PREF
                promoted += 1
            elif slot.coverage > medium and promoted < cfg.max_prefetch_deltas:
                slot.status = L2_PREF_REPL if slot.coverage < repl else L2_PREF
                promoted += 1
            else:
                slot.status = NO_PREF
            slot.coverage = 0
        entry.counter = 0
        entry.warmed_up = True
        entry.pf_cache = None  # statuses changed: recompute on next access

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def prefetch_deltas(self, ip: int) -> List[Tuple[int, int]]:
        """Deltas to prefetch for ``ip`` as ``(delta, status)`` pairs.

        After the first completed phase this returns the stored statuses.
        During warmup (no phase completed yet) it applies the stricter
        80 % watermark once ``warmup_min_searches`` searches have been
        gathered, returning those deltas as ``L1D_PREF``.
        """
        cfg = self.config
        entry = self._find(self._tag_of(ip))
        if entry is None:
            return []
        if entry.warmed_up:
            # Statuses only change at phase boundaries (and on the rare
            # eviction of a prefetching slot), so the selected list is
            # memoised on the entry; this path runs on every L1D access.
            selected = entry.pf_cache
            if selected is None:
                selected = [
                    (s.delta, s.status)
                    for s in entry.slots
                    if s.valid and s.status != NO_PREF
                ]
                # High-coverage deltas first: under PQ pressure the queue
                # sheds the low-coverage tail, not the best predictions.
                selected.sort(key=lambda ds: ds[1] != L1D_PREF)
                selected = selected[: cfg.max_prefetch_deltas]
                entry.pf_cache = selected
            return selected
        if entry.counter < cfg.warmup_min_searches:
            return []
        threshold = cfg.warmup_watermark * entry.counter
        return [
            (s.delta, L1D_PREF)
            for s in entry.slots
            if s.valid and s.coverage >= threshold
        ][: cfg.max_prefetch_deltas]

    def entry_snapshot(self, ip: int) -> List[Tuple[int, int, int]]:
        """(delta, coverage, status) triples for inspection/tests."""
        entry = self._find(self._tag_of(ip))
        if entry is None:
            return []
        return [
            (s.delta, s.coverage, s.status) for s in entry.slots if s.valid
        ]

    def reset(self) -> None:
        cfg = self.config
        self._entries = [
            _Entry(cfg.deltas_per_entry) for _ in range(cfg.delta_table_entries)
        ]
        self._by_tag = {}
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self.phase_completions = 0
        self.discarded_deltas = 0
