"""Differential fuzzing and crash-triage subsystem (``repro fuzz``).

Five pieces, each importable on its own:

* :mod:`repro.fuzz.cases` — replayable :class:`FuzzCase` artifacts with
  content-derived ids and typed schema validation;
* :mod:`repro.fuzz.generators` — structured adversarial trace families
  and adversarial-but-valid config vectors;
* :mod:`repro.fuzz.oracle` — the differential harness (engines,
  reference, snapshot, and validity legs);
* :mod:`repro.fuzz.corruption` — the persisted-format corruption
  matrix (trace store, snapshot, WAL, result cache);
* :mod:`repro.fuzz.shrink` — deterministic ddmin minimisation under a
  bucket-identity predicate;
* :mod:`repro.fuzz.campaign` — budgeted deterministic campaigns and
  corpus replay.

See ``docs/fuzzing.md`` for the architecture walk-through.
"""

from repro.fuzz.campaign import (
    CampaignReport,
    plan_cases,
    replay_corpus,
    run_campaign,
)
from repro.fuzz.cases import CASE_SCHEMA, FuzzCase, case_factory, load_case
from repro.fuzz.corruption import CorruptionReport, corruption_matrix
from repro.fuzz.generators import FAMILIES, generate_case
from repro.fuzz.oracle import FuzzFinding, run_case
from repro.fuzz.shrink import ShrinkResult, ddmin, shrink_case

__all__ = [
    "CASE_SCHEMA",
    "CampaignReport",
    "CorruptionReport",
    "FAMILIES",
    "FuzzCase",
    "FuzzFinding",
    "ShrinkResult",
    "case_factory",
    "corruption_matrix",
    "ddmin",
    "generate_case",
    "load_case",
    "plan_cases",
    "replay_corpus",
    "run_case",
    "run_campaign",
    "shrink_case",
]
