"""Tests for the ``repro.perf`` benchmark/profiling harness."""

import json

import pytest

from repro.perf import (
    BenchCase,
    calibrate_host,
    check_regression,
    default_cases,
    load_report,
    run_case,
    run_suite,
    write_report,
)
from repro.perf.bench import build_bench_trace
from repro.perf.profiling import (
    format_top_functions,
    profile_call,
    top_functions,
)


class TestCases:
    def test_default_matrix_shape(self):
        cases = default_cases()
        # Three trace families plus synthetic, each with and without
        # Berti, a @batched and a @native twin per single-core case,
        # plus the two berti-on multicore (shared-LLC) cases.
        assert len(cases) == 26
        names = {c.name for c in cases}
        assert "synth/none" in names and "mcf/berti" in names
        assert "mc2-synth/berti" in names and "mc2-bfs/berti" in names
        assert all(c.l1d in ("none", "berti") for c in cases)
        assert all(c.cores == 2 for c in cases if c.name.startswith("mc2"))
        assert all(c.cores == 1 for c in cases
                   if not c.name.startswith("mc2"))

    def test_engine_twins_mirror_classic_cases(self):
        cases = {c.name: c for c in default_cases()}
        for engine in ("batched", "native"):
            suffix = f"@{engine}"
            twins = [c for c in cases.values() if c.engine == engine]
            assert len(twins) == 8  # every single-core case, no mc2 twins
            for twin in twins:
                assert twin.name.endswith(suffix)
                classic = cases[twin.name[: -len(suffix)]]
                assert (twin.trace, twin.l1d, twin.scale, twin.cores) == (
                    classic.trace, classic.l1d, classic.scale, classic.cores
                )
                assert classic.engine == "classic"
            assert all(not c.name.startswith("mc2") for c in twins)

    def test_scale_propagates(self):
        cases = default_cases(scale=0.125)
        assert all(c.scale == 0.125 for c in cases)

    def test_synth_trace_is_deterministic(self):
        a = build_bench_trace("synth:bench", 0.1)
        b = build_bench_trace("synth:bench", 0.1)
        assert len(a) == len(b) > 0
        assert list(a) == list(b)


class TestRunning:
    def test_run_case_smoke(self):
        case = BenchCase(name="t/none", trace="synth:bench",
                        l1d="none", scale=0.05)
        res = run_case(case, repeats=1)
        assert res.records > 0
        assert res.best_seconds > 0
        assert res.records_per_sec > 0
        assert res.normalized is None

    def test_run_case_normalized(self):
        case = BenchCase(name="t/none", trace="synth:bench",
                        l1d="none", scale=0.05)
        res = run_case(case, repeats=1, calibration_mops=2.0)
        assert res.normalized == pytest.approx(res.records_per_sec / 2.0)

    def test_run_suite_interleaved(self):
        cases = [
            BenchCase(name="a/none", trace="synth:bench",
                      l1d="none", scale=0.05),
            BenchCase(name="a/berti", trace="synth:bench",
                      l1d="berti", scale=0.05),
        ]
        lines = []
        results = run_suite(cases, repeats=2, progress=lines.append)
        assert [r.case.name for r in results] == ["a/none", "a/berti"]
        assert all(r.repeats == 2 for r in results)
        assert len(lines) == 2

    def test_calibrate_host_positive(self):
        mops = calibrate_host(target_seconds=0.01)
        assert mops > 0


def _report(cases, calibration=None):
    """Fabricate a report dict in the bench-simcore/v1 layout."""
    return {
        "schema": "bench-simcore/v1",
        "host": {"calibration_mops": calibration},
        "cases": [
            {
                "name": name,
                "records_per_sec": rps,
                "normalized": (rps / calibration) if calibration else None,
            }
            for name, rps in cases.items()
        ],
    }


class TestRegressionGate:
    def test_pass_when_equal(self):
        base = _report({"a/none": 1000.0})
        assert check_regression(_report({"a/none": 1000.0}), base) == []

    def test_fail_beyond_tolerance(self):
        base = _report({"a/none": 1000.0})
        problems = check_regression(
            _report({"a/none": 650.0}), base, tolerance=0.30
        )
        assert len(problems) == 1
        assert "a/none" in problems[0]

    def test_pass_within_tolerance(self):
        base = _report({"a/none": 1000.0})
        assert check_regression(
            _report({"a/none": 710.0}), base, tolerance=0.30
        ) == []

    def test_missing_baseline_case_fails(self):
        base = _report({"a/none": 1000.0, "b/none": 1000.0})
        problems = check_regression(_report({"a/none": 1000.0}), base)
        assert any("missing" in p for p in problems)

    def test_new_case_does_not_fail(self):
        base = _report({"a/none": 1000.0})
        cur = _report({"a/none": 1000.0, "new/berti": 5.0})
        assert check_regression(cur, base) == []

    def test_normalized_comparison_cancels_host_speed(self):
        # Baseline host is 2x faster in raw terms, but normalized
        # throughput matches, so the gate must pass.
        base = _report({"a/none": 2000.0}, calibration=4.0)
        cur = _report({"a/none": 1000.0}, calibration=2.0)
        assert check_regression(cur, base) == []

    def test_raw_comparison_without_calibration(self):
        base = _report({"a/none": 2000.0})
        cur = _report({"a/none": 1000.0})
        assert check_regression(cur, base, tolerance=0.30) != []


class TestReports:
    def test_write_and_load_roundtrip(self, tmp_path):
        case = BenchCase(name="t/none", trace="synth:bench",
                        l1d="none", scale=0.05)
        res = run_case(case, repeats=1, calibration_mops=3.0)
        path = tmp_path / "bench.json"
        report = write_report(str(path), [res], calibration_mops=3.0,
                              extra={"label": "unit"})
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(report))
        assert loaded["schema"] == "bench-simcore/v1"
        assert loaded["label"] == "unit"
        assert loaded["host"]["calibration_mops"] == 3.0
        assert loaded["cases"][0]["name"] == "t/none"


class TestProfiling:
    def test_profile_call_returns_result(self):
        result, prof = profile_call(sum, range(1000))
        assert result == sum(range(1000))
        rows = top_functions(prof, n=5)
        assert rows
        assert {"function", "ncalls", "tottime", "cumtime"} <= set(rows[0])

    def test_format_top_functions(self):
        _, prof = profile_call(sorted, list(range(100)))
        table = format_top_functions(prof, n=3)
        assert "cumtime" in table

    def test_cli_profile_flag(self, tmp_path, capsys):
        from repro.cli import main

        stats = tmp_path / "prof.out"
        rc = main([
            "run", "--trace", "mcf_s-1554B", "--l1d", "none",
            "--scale", "0.02", "--profile", str(stats),
        ])
        assert rc == 0
        assert stats.exists()
        err = capsys.readouterr().err
        assert "cumtime" in err


class TestBenchScript:
    def test_gate_script_regression_exit(self, tmp_path, monkeypatch):
        # Drive the CLI entry point end-to-end with a fabricated
        # impossible baseline: the gate must trip and exit nonzero.
        import importlib.util
        from pathlib import Path

        script = (Path(__file__).parent.parent
                  / "benchmarks" / "perf" / "bench_simcore.py")
        spec = importlib.util.spec_from_file_location("bench_cli", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(_report({"synth/none": 1e12})))
        out = tmp_path / "bench.json"
        rc = mod.main([
            "--scale", "0.02", "--repeats", "1",
            "--out", str(out), "--baseline", str(base),
        ])
        assert rc == 1
        assert out.exists()
