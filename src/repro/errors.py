"""Structured exception hierarchy for the reproduction toolkit.

Every failure the experiment pipeline can encounter is classified under
:class:`ReproError`, carrying the (trace, prefetcher) context of the job
that produced it.  The resilient runner (:mod:`repro.runner`) uses the
class of an exception to decide whether a job is retryable:

* :class:`TraceError` / :class:`ConfigError` — *permanent*: the job is
  malformed and re-running it cannot help.
* :class:`SimulationError` — a run crashed mid-flight; retried a bounded
  number of times in case the failure was environmental (a worker OOM,
  a flaky filesystem), then recorded as a failed run.
* :class:`JobTimeout` — the job exceeded its wall-clock budget; not
  retried by default (a hang will usually hang again).

Exceptions cross process boundaries (``concurrent.futures`` pickles
them back to the parent), so the context travels via ``__reduce__``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all toolkit errors, with job context attached."""

    #: Whether the runner may retry a job that raised this error.
    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        trace: Optional[str] = None,
        prefetcher: Optional[str] = None,
        field: Optional[str] = None,
    ) -> None:
        self.message = message
        self.trace = trace
        self.prefetcher = prefetcher
        self.field = field
        super().__init__(self._render())

    def _render(self) -> str:
        parts = []
        if self.trace:
            parts.append(f"trace={self.trace}")
        if self.prefetcher:
            parts.append(f"prefetcher={self.prefetcher}")
        if self.field:
            parts.append(f"field={self.field}")
        if parts:
            return f"{self.message} [{' '.join(parts)}]"
        return self.message

    def context(self) -> Dict[str, Any]:
        """The job context as a plain dict (for journal records)."""
        return {
            "trace": self.trace,
            "prefetcher": self.prefetcher,
            "field": self.field,
        }

    def __reduce__(self):
        # Preserve keyword context across pickling (process boundaries).
        return (
            _rebuild,
            (self.__class__, self.message, self.trace, self.prefetcher,
             self.field),
        )


def _rebuild(cls, message, trace, prefetcher, field):
    return cls(message, trace=trace, prefetcher=prefetcher, field=field)


class TraceError(ReproError):
    """A trace could not be resolved, loaded, or failed validation."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of its legal range.

    Also a :class:`ValueError` so existing ``with_watermarks``-style
    call sites (and their tests) keep working unchanged.
    """


class SimulationError(ReproError):
    """A simulation crashed or produced internally inconsistent stats."""

    retryable = True


class SanitizerError(SimulationError):
    """A runtime invariant check (SimSan) failed mid-simulation.

    Carries the index of the demand access at which the violation was
    detected and a structured dump of the offending hardware structure,
    so the failure is reproducible and debuggable without re-running.
    Not retryable: a corrupted simulator state is deterministic.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        trace: Optional[str] = None,
        prefetcher: Optional[str] = None,
        field: Optional[str] = None,
        access_index: Optional[int] = None,
        structure: Optional[str] = None,
        dump: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.access_index = access_index
        self.structure = structure
        self.dump = dump or {}
        super().__init__(message, trace=trace, prefetcher=prefetcher,
                         field=field)

    def _render(self) -> str:
        base = super()._render()
        parts = []
        if self.structure:
            parts.append(f"structure={self.structure}")
        if self.access_index is not None:
            parts.append(f"access_index={self.access_index}")
        if parts:
            base = f"{base} [{' '.join(parts)}]"
        if self.dump:
            base = f"{base}\n  dump: {self.dump!r}"
        return base

    def __reduce__(self):
        return (
            _rebuild_sanitizer,
            (self.__class__, self.message, self.trace, self.prefetcher,
             self.field, self.access_index, self.structure, self.dump),
        )


def _rebuild_sanitizer(cls, message, trace, prefetcher, field, access_index,
                       structure, dump):
    return cls(message, trace=trace, prefetcher=prefetcher, field=field,
               access_index=access_index, structure=structure, dump=dump)


class SnapshotError(ReproError):
    """A simulator snapshot could not be written, read, or trusted.

    Raised on checksum mismatches, truncated files, unsupported format
    versions, and trace/config identity mismatches on ``--resume-from``.
    Never retryable: a corrupt snapshot stays corrupt.
    """


class ResourceError(ReproError):
    """A host resource guard tripped (low memory, low disk, fat worker).

    Retryable: resource pressure is environmental — after the supervisor
    degrades the campaign (fewer workers, paused submissions) a retry of
    the same job may well succeed.
    """

    retryable = True


class JobTimeout(ReproError):
    """A job exceeded its wall-clock budget and was killed."""

    def __init__(
        self,
        message: str,
        *,
        trace: Optional[str] = None,
        prefetcher: Optional[str] = None,
        field: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.timeout = timeout
        super().__init__(message, trace=trace, prefetcher=prefetcher,
                         field=field)

    def __reduce__(self):
        return (
            _rebuild_timeout,
            (self.__class__, self.message, self.trace, self.prefetcher,
             self.field, self.timeout),
        )


def _rebuild_timeout(cls, message, trace, prefetcher, field, timeout):
    return cls(message, trace=trace, prefetcher=prefetcher, field=field,
               timeout=timeout)


class ServiceError(ReproError):
    """A campaign-service request could not be honoured.

    Raised by the scheduler daemon (:mod:`repro.service`) and its client
    for protocol-level failures: malformed submissions, unknown
    campaigns, a full queue (backpressure), or a daemon that is
    draining.  ``status`` carries the HTTP status code the API maps the
    error to, and ``retry_after`` (seconds) is set when the client
    should back off and try again — the client honours it.
    """

    def __init__(
        self,
        message: str,
        *,
        trace: Optional[str] = None,
        prefetcher: Optional[str] = None,
        field: Optional[str] = None,
        status: int = 400,
        retry_after: Optional[float] = None,
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(message, trace=trace, prefetcher=prefetcher,
                         field=field)

    def __reduce__(self):
        return (
            _rebuild_service,
            (self.__class__, self.message, self.trace, self.prefetcher,
             self.field, self.status, self.retry_after),
        )


def _rebuild_service(cls, message, trace, prefetcher, field, status,
                     retry_after):
    return cls(message, trace=trace, prefetcher=prefetcher, field=field,
               status=status, retry_after=retry_after)


class FleetError(ServiceError):
    """A multi-host fleet operation failed (agents, transport, digests).

    The fleet branch of the service hierarchy: everything that can only
    go wrong once a second host is involved — an unreachable daemon, an
    agent the daemon no longer knows, a trace store whose bytes do not
    match the digest the scheduler promised.  ``agent`` attributes the
    failure to the remote agent involved, when there is one, so campaign
    reports and the fleet manifest can name the failure domain.
    """

    def __init__(
        self,
        message: str,
        *,
        trace: Optional[str] = None,
        prefetcher: Optional[str] = None,
        field: Optional[str] = None,
        status: int = 500,
        retry_after: Optional[float] = None,
        agent: Optional[str] = None,
    ) -> None:
        self.agent = agent
        super().__init__(message, trace=trace, prefetcher=prefetcher,
                         field=field, status=status, retry_after=retry_after)

    def _render(self) -> str:
        base = super()._render()
        if self.agent:
            base = f"{base} [agent={self.agent}]"
        return base

    def __reduce__(self):
        return (
            _rebuild_fleet,
            (self.__class__, self.message, self.trace, self.prefetcher,
             self.field, self.status, self.retry_after, self.agent),
        )


def _rebuild_fleet(cls, message, trace, prefetcher, field, status,
                   retry_after, agent):
    return cls(message, trace=trace, prefetcher=prefetcher, field=field,
               status=status, retry_after=retry_after, agent=agent)


class TransportError(FleetError):
    """A network-level request failed before an HTTP status existed.

    Wraps the raw socket/HTTP exceptions (``ConnectionError``,
    ``socket.timeout``, ``OSError``) the transport layer can raise, so
    nothing above the client ever sees an untyped network error.  Always
    field-tagged ``transport`` and retryable: the fault-injecting chaos
    transport raises exactly this for drops and partitions, and the
    client's bounded-backoff loop is the recovery path.
    """

    retryable = True

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("status", 503)
        kwargs.setdefault("field", "transport")
        super().__init__(message, **kwargs)


class AgentLost(FleetError):
    """A remote agent stopped heartbeating and was declared dead.

    Its leases are requeued (exactly once per expiry, with lineage and
    agent attribution in the fleet manifest); retryable by construction,
    the requeue *is* the retry.
    """

    retryable = True

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("status", 503)
        super().__init__(message, **kwargs)


class DigestMismatch(FleetError):
    """A trace store's bytes do not match the digest the lease promised.

    An agent verifies the ``sha256:`` digest of a leased job's trace
    store *before* executing it; a mismatch means the interchange file
    was corrupted or swapped in flight, and running it would poison the
    result cache with stats computed from the wrong bytes.  The agent
    refuses the job (it never executes), the daemon requeues it within
    the lease budget, and a persistently poisoned job fails typed.
    Not retryable against the same bytes — recovery means healing the
    file, which the requeue gives the operator time to do.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("status", 409)
        kwargs.setdefault("field", "trace_digest")
        super().__init__(message, **kwargs)


class LeaseExpired(ServiceError):
    """A worker's time-bounded job lease lapsed without a heartbeat.

    The scheduler requeues the job exactly once per expiry (attempt
    lineage records every grant/expiry), so a lost worker delays a job
    instead of losing it.  Retryable by construction: expiry *is* the
    retry signal.
    """

    retryable = True

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("status", 503)
        super().__init__(message, **kwargs)


class CacheCorruption(ServiceError):
    """A result-cache entry failed its checksum and cannot be served.

    The cache quarantines the entry (renamed aside, never deleted, never
    returned) and the scheduler recomputes the result.  Not retryable at
    the job level — the *cache read* failed, not the job; the recompute
    path handles it.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("status", 500)
        super().__init__(message, **kwargs)


class HeartbeatTimeout(JobTimeout):
    """A worker stopped emitting progress heartbeats and was preempted.

    Distinct from :class:`JobTimeout` so campaign reports can tell
    "killed by liveness, long before the wall-clock budget" apart from
    "ran out its full budget" — the supervisor preempts on the former.
    """


class FuzzError(ReproError):
    """A fuzzing artifact (case file, corpus entry, report) is malformed.

    Raised by :mod:`repro.fuzz` when a replayable case file cannot be
    parsed or fails its schema check — the fuzzer holds its own
    artifacts to the same typed-rejection standard it enforces on the
    four persisted simulator formats.
    """
