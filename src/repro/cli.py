"""Command-line interface: run reproduction experiments from a shell.

Examples::

    python -m repro list
    python -m repro trace-info --trace mcf_s-1554B
    python -m repro run --trace mcf_s-1554B --l1d berti
    python -m repro compare --trace bc-kron --l1d ip_stride,ipcp,berti
    python -m repro suite --suite spec17 --l1d mlop,ipcp,berti --scale 0.3 \
        --workers 4 --journal suite.jsonl --resume
    python -m repro storage

``suite`` and ``compare`` execute through the resilient runner
(:mod:`repro.runner`): jobs run in parallel worker processes, crashes
and hangs fail one job instead of the campaign, and a ``--journal``
makes an interrupted suite resumable with ``--resume``.  See
``docs/runner.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table
from repro.errors import ConfigError, ReproError
from repro.prefetchers.registry import available, make_prefetcher, storage_kb
from repro.runner import (
    ExperimentRunner,
    FaultSpec,
    JobSpec,
    RunnerConfig,
    build_matrix_jobs,
    per_trace_results,
    run_job,
)
from repro.workloads.catalog import (
    all_trace_names,
    resolve_trace,
    suite_trace_names,
)

__all__ = [
    "all_trace_names", "build_parser", "main", "resolve_trace",
]


def _runner_config(args, n_jobs: int) -> RunnerConfig:
    workers = args.workers
    if workers < 0:  # --workers -1: one worker per job, bounded by the host
        import os
        workers = max(1, min(os.cpu_count() or 1, n_jobs))
    return RunnerConfig(
        workers=workers,
        timeout=args.timeout,
        retries=args.retries,
        journal_path=args.journal,
        resume=args.resume,
        verbose=True,
    )


def _parse_faults(args) -> Dict[str, FaultSpec]:
    """``--inject kind:trace[:period]`` flags → trace-keyed fault specs."""
    faults: Dict[str, FaultSpec] = {}
    for item in args.inject or []:
        parts = item.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad --inject {item!r}; expected kind:trace[:period]",
                field="inject",
            )
        kind, trace = parts[0], parts[1]
        period = int(parts[2]) if len(parts) == 3 else 3
        if kind == "hang":
            faults[trace] = FaultSpec(kind=kind, period=period,
                                      hang_seconds=3600.0)
        else:
            faults[trace] = FaultSpec(kind=kind, period=period)
    return faults


def cmd_list(args) -> int:
    print("Prefetchers:")
    for name in available():
        pf = make_prefetcher(name)
        print(f"  {name:12s} level={pf.level:4s} "
              f"storage={pf.storage_kb():7.2f} KB")
    print("\nTraces:")
    for name in all_trace_names():
        print(f"  {name}")
    return 0


def cmd_trace_info(args) -> int:
    t = resolve_trace(args.trace, args.scale)
    print(f"name:          {t.name}")
    print(f"suite:         {t.suite}")
    print(f"description:   {t.description}")
    print(f"records:       {len(t)}")
    print(f"instructions:  {t.instruction_count}")
    print(f"load IPs:      {t.unique_ips}")
    print(f"footprint:     {t.footprint_bytes() / 1024:.0f} KB")
    print(f"write frac:    {t.write_fraction:.1%}")
    return 0


def cmd_run(args) -> int:
    # One job, run inline through the typed worker: trace/prefetcher
    # errors arrive classified and the result is invariant-checked.
    spec = JobSpec(trace=args.trace, l1d=args.l1d, l2=args.l2,
                   scale=args.scale, mtps=args.mtps)
    if args.profile is not None:
        from repro.perf.profiling import profile_and_report

        dump = args.profile or None  # "" = report only, no stats file
        result, table = profile_and_report(
            run_job, spec, dump_path=dump, top=args.profile_top
        )
        print(table, file=sys.stderr)
        if dump:
            print(f"profile stats written to {dump} "
                  f"(inspect with python -m pstats)", file=sys.stderr)
    else:
        result = run_job(spec)
    pf = result.pf_l1d
    print(result.summary_line())
    print(f"  IPC              {result.ipc:.3f}")
    print(f"  MPKI l1d/l2/llc  {result.l1d_mpki:.1f} / {result.l2_mpki:.1f}"
          f" / {result.llc_mpki:.1f}")
    print(f"  prefetch issued  {pf.issued}")
    print(f"  useful (late)    {pf.useful} ({pf.late})")
    print(f"  accuracy         {pf.accuracy:.1%}")
    print(f"  dram reads       {result.dram_reads} "
          f"(avg latency {result.avg_dram_read_latency:.0f} cycles)")
    return 0


def cmd_compare(args) -> int:
    t = resolve_trace(args.trace, args.scale)  # fail fast on a bad name
    names = args.l1d.split(",")
    if args.baseline not in names:
        names = [args.baseline] + names
    jobs = build_matrix_jobs(
        [args.trace], names, scale=args.scale, mtps=args.mtps,
        faults=_parse_faults(args),
    )
    runner = ExperimentRunner(_runner_config(args, len(jobs)))
    suite = runner.run(jobs)
    print(suite.banner(), file=sys.stderr)

    results = per_trace_results(jobs, suite).get(args.trace, {})
    base = results.get(args.baseline)
    if base is None:
        print(f"error: baseline {args.baseline!r} failed on {args.trace}; "
              f"no speedups to report", file=sys.stderr)
        return 2
    failed = {f.key: f for f in suite.failures}
    rows = []
    for job in jobs:
        n = job.l1d
        if n in results:
            r = results[n]
            rows.append([n, r.ipc, r.speedup_over(base), r.l1d_mpki,
                         r.pf_l1d.accuracy])
        else:
            f = failed.get(job.key)
            rows.append([n, f"FAILED ({f.kind})" if f else "FAILED",
                         "-", "-", "-"])
    print(format_table(
        ["prefetcher", "IPC", f"speedup vs {args.baseline}", "L1D MPKI",
         "accuracy"],
        rows, title=f"{t.name} ({len(t)} accesses)",
    ))
    return 0 if not suite.failures else 3


def cmd_suite(args) -> int:
    trace_names = suite_trace_names(args.suite, args.all_graphs)
    names = args.l1d.split(",")
    if args.baseline not in names:
        names = [args.baseline] + names
    jobs = build_matrix_jobs(
        trace_names, names, scale=args.scale, mtps=args.mtps,
        faults=_parse_faults(args),
    )
    runner = ExperimentRunner(_runner_config(args, len(jobs)))
    suite = runner.run(jobs)

    per_trace = per_trace_results(jobs, suite)
    survivors = [t for t in trace_names if args.baseline in per_trace.get(t, {})]
    speeds = geomean_speedup(per_trace, baseline_name=args.baseline)
    rows = [[n, speeds.get(n, 0.0)] for n in names]

    print(suite.banner(), file=sys.stderr)
    for f in suite.failures:
        print(f"  FAILED [{f.kind}] {f.key}: {f.message}", file=sys.stderr)
    print(format_table(
        ["prefetcher", "geomean speedup"], rows,
        title=f"suite {args.suite} ({len(survivors)}/{len(trace_names)} "
              f"traces, scale {args.scale})",
    ))
    return 0 if not suite.failures else 3


def cmd_storage(args) -> int:
    from repro.core.config import BertiConfig

    rows = [
        [name, round(storage_kb(name), 2)]
        for name in available() if name != "none"
    ]
    print(format_table(["prefetcher", "storage KB"], rows,
                       title="Hardware budgets"))
    print("\nBerti breakdown (Table I):")
    for k, v in BertiConfig().storage_breakdown_kb().items():
        print(f"  {k:22s} {v:5.2f} KB")
    return 0


def _add_runner_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("runner (resilience/parallelism)")
    g.add_argument("--workers", type=int, default=0,
                   help="worker processes; 0 = in-process serial, "
                        "-1 = one per CPU (default 0)")
    g.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock seconds (requires --workers >= 1)")
    g.add_argument("--retries", type=int, default=1,
                   help="extra attempts for transient failures (default 1)")
    g.add_argument("--journal", default=None,
                   help="JSONL checkpoint journal path")
    g.add_argument("--resume", action="store_true",
                   help="replay completed jobs from --journal")
    g.add_argument("--inject", action="append", default=None,
                   metavar="KIND:TRACE[:PERIOD]",
                   help="inject a fault (crash/hang/corrupt/mshr_full/"
                        "pq_full/flaky) into every job of TRACE")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Berti (MICRO 2022) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list prefetchers and traces")

    info = sub.add_parser("trace-info", help="describe a trace")
    info.add_argument("--trace", required=True)
    info.add_argument("--scale", type=float, default=0.5)

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("--trace", required=True)
    run.add_argument("--l1d", default="berti")
    run.add_argument("--l2", default="none")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--profile", nargs="?", const="", default=None,
                     metavar="STATS_FILE",
                     help="run under cProfile; print the hot-function "
                          "table and optionally dump raw stats to "
                          "STATS_FILE")
    run.add_argument("--profile-top", type=int, default=15,
                     help="rows in the --profile hot-function table")
    run.add_argument("--mtps", type=int, default=None,
                     help="DRAM transfer rate (6400/3200/1600)")

    cmp_ = sub.add_parser("compare", help="compare prefetchers on a trace")
    cmp_.add_argument("--trace", required=True)
    cmp_.add_argument("--l1d", default="ip_stride,mlop,ipcp,berti")
    cmp_.add_argument("--baseline", default="ip_stride")
    cmp_.add_argument("--scale", type=float, default=0.5)
    cmp_.add_argument("--mtps", type=int, default=None)
    _add_runner_args(cmp_)

    suite = sub.add_parser("suite", help="geomean speedups over a suite")
    suite.add_argument("--suite", default="spec17",
                       choices=["spec17", "gap", "cloudsuite"])
    suite.add_argument("--l1d", default="mlop,ipcp,berti")
    suite.add_argument("--baseline", default="ip_stride")
    suite.add_argument("--scale", type=float, default=0.4)
    suite.add_argument("--all-graphs", action="store_true")
    suite.add_argument("--mtps", type=int, default=None)
    _add_runner_args(suite)

    sub.add_parser("storage", help="hardware budgets incl. Table I")
    return p


COMMANDS = {
    "list": cmd_list,
    "trace-info": cmd_trace_info,
    "run": cmd_run,
    "compare": cmd_compare,
    "suite": cmd_suite,
    "storage": cmd_storage,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
