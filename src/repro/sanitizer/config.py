"""Configuration for the SimSan runtime invariant checker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.errors import ConfigError

#: Invariant families the checker knows how to validate.
CHECK_FAMILIES = frozenset(
    {"cache", "replacement", "mshr", "pq", "berti"}
)


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs for :func:`repro.sanitizer.invariants.attach_sanitizer`.

    ``check_every`` trades coverage for speed: 1 validates after every
    demand access (exact first-violation localisation), larger strides
    amortise the structural scans over long traces.  The reported access
    index is exact either way — it is the index of the access after
    which the violation was *detected*; with a stride the corruption may
    have happened up to ``check_every - 1`` accesses earlier.
    """

    check_every: int = 64
    families: FrozenSet[str] = field(default_factory=lambda: CHECK_FAMILIES)
    #: Include full structure dumps in the raised SanitizerError.  Off
    #: only makes sense for huge structures in memory-constrained runs.
    dump_structures: bool = True

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigError(
                f"check_every must be >= 1, got {self.check_every}",
                field="check_every",
            )
        unknown = set(self.families) - CHECK_FAMILIES
        if unknown:
            raise ConfigError(
                f"unknown sanitizer families {sorted(unknown)}; "
                f"choose from {sorted(CHECK_FAMILIES)}",
                field="families",
            )
        # Normalise to a frozenset so configs hash/pickle predictably.
        object.__setattr__(self, "families", frozenset(self.families))
