"""Differential oracle: one fuzz case through every engine we have.

Five legs, each a self-contained verdict:

* **engines** — batched vs classic inner loop in chunk-boundary
  lockstep (:func:`~repro.sanitizer.lockstep.lockstep_engines`), run at
  the case's chunk size, with divergence auto-localised to the exact
  access.
* **reference** — optimised vs pure-virtual-dispatch hierarchy in
  per-access lockstep (:func:`~repro.sanitizer.lockstep.lockstep_run`).
* **snapshot** — the mid-trace checkpoint contract: ``simulate`` vs
  ``simulate_with_snapshots``, byte-identical checkpoint files across
  two write passes, and a resume from the newest checkpoint that must
  land on the same result dict.
* **native** — the C kernel vs classic in the same chunk-boundary
  lockstep, plus the forced mid-span demotion edge when the case
  carries ``native_demote_at``.  Skipped (not failed) on hosts with no
  C compiler.
* **validity** — for ``expect="reject"`` cases only: every engine must
  refuse the input with a typed :class:`~repro.errors.ReproError`
  (raw exceptions and silent acceptance are both findings).

A finding's **signature** is its bucket key: leg plus the divergence
field (or exception type) — deliberately *excluding* the access index
and any values, so the same root cause found through different cases
lands in one bucket and the shrinker can test "does this still fail the
same way" by string equality.
"""

from __future__ import annotations

import filecmp
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ReproError
from repro.fuzz.cases import FuzzCase
from repro.sanitizer.lockstep import lockstep_engines, lockstep_run
from repro.sanitizer.snapshot import (
    latest_snapshot,
    simulate_with_snapshots,
)
from repro.simulator.engine import simulate

__all__ = ["FuzzFinding", "run_case"]


@dataclass
class FuzzFinding:
    """One confirmed misbehaviour, bucketed by its signature."""

    case_id: str
    leg: str
    signature: str
    detail: str

    def to_dict(self):
        return {"case_id": self.case_id, "leg": self.leg,
                "signature": self.signature, "detail": self.detail}


def _finding(case: FuzzCase, leg: str, signature: str,
             detail: str) -> FuzzFinding:
    return FuzzFinding(case_id=case.case_id, leg=leg,
                       signature=signature, detail=detail)


def _exception_finding(case: FuzzCase, leg: str,
                       exc: BaseException) -> FuzzFinding:
    kind = ("exception" if isinstance(exc, ReproError) else "raw-exception")
    return _finding(case, leg, f"{leg}:{kind}:{type(exc).__name__}",
                    f"{type(exc).__name__}: {exc}")


def _validity_leg(case: FuzzCase) -> Optional[FuzzFinding]:
    """``expect="reject"``: every engine refuses, typed, no exceptions."""
    make = case.make()
    wf = case.config.get("warmup_fraction", 0.2)

    def attempt(label: str, run: Callable) -> Optional[FuzzFinding]:
        try:
            run()
        except ReproError:
            return None  # the contract: typed refusal
        except Exception as exc:
            return _finding(case, "validity",
                            f"validity:raw:{type(exc).__name__}",
                            f"{label} refused with untyped "
                            f"{type(exc).__name__}: {exc}")
        return _finding(case, "validity", f"validity:silent-accept:{label}",
                        f"{label} accepted an input every engine must "
                        f"refuse ({len(case.records)} records)")

    trace = case.trace()
    l1d, l2 = case.config.get("l1d", "berti"), case.config.get("l2", "none")
    for label, run in (
        ("classic", lambda: simulate(
            trace, make(l1d), make(l2), warmup_fraction=wf)),
        ("batched", lambda: simulate(
            trace, make(l1d), make(l2), warmup_fraction=wf,
            engine="batched",
            chunk_size=case.config.get("chunk_size", 0))),
        ("native", lambda: simulate(
            trace, make(l1d), make(l2), warmup_fraction=wf,
            engine="native",
            chunk_size=case.config.get("chunk_size", 0))),
        ("snapshot", lambda: simulate_with_snapshots(
            trace, make(l1d), make(l2), warmup_fraction=wf)),
    ):
        found = attempt(label, run)
        if found is not None:
            return found
    return None


def _engines_leg(case: FuzzCase) -> Optional[FuzzFinding]:
    report = lockstep_engines(
        case.trace(),
        l1d=case.config.get("l1d", "berti"),
        l2=case.config.get("l2", "none"),
        warmup_fraction=case.config.get("warmup_fraction", 0.2),
        chunk_size=case.config.get("chunk_size", 0),
        seed_divergence=case.config.get("plant_divergence"),
        make=case.make(),
    )
    if report.ok:
        return None
    return _finding(case, "engines", f"engines:{report.field}",
                    report.describe())


def _reference_leg(case: FuzzCase) -> Optional[FuzzFinding]:
    report = lockstep_run(
        case.trace(),
        l1d=case.config.get("l1d", "berti"),
        l2=case.config.get("l2", "none"),
        warmup_fraction=case.config.get("warmup_fraction", 0.2),
        digest_every=64,
        make=case.make(),
    )
    if report.ok:
        return None
    return _finding(case, "reference", f"reference:{report.field}",
                    report.describe())


def _snapshot_leg(case: FuzzCase) -> Optional[FuzzFinding]:
    make = case.make()
    trace = case.trace()
    l1d, l2 = case.config.get("l1d", "berti"), case.config.get("l2", "none")
    wf = case.config.get("warmup_fraction", 0.2)
    every = max(1, len(trace) // 2)

    straight = simulate(trace, make(l1d), make(l2),
                        warmup_fraction=wf).to_dict()
    with tempfile.TemporaryDirectory(prefix="fuzz-snap-") as d1, \
            tempfile.TemporaryDirectory(prefix="fuzz-snap-") as d2:
        ckpt = simulate_with_snapshots(
            trace, make(l1d), make(l2), warmup_fraction=wf,
            snapshot_every=every, snapshot_dir=d1).to_dict()
        if ckpt != straight:
            keys = [k for k in straight if ckpt.get(k) != straight[k]]
            return _finding(case, "snapshot", "snapshot:checkpointed-result",
                            f"checkpointed run differs from straight run "
                            f"in {keys[:4]}")
        # Same run again into a second directory: checkpoint files must
        # be byte-identical (snapshots may not embed wall clock, ids,
        # or dict-order nondeterminism).
        simulate_with_snapshots(
            trace, make(l1d), make(l2), warmup_fraction=wf,
            snapshot_every=every, snapshot_dir=d2)
        names1 = sorted(os.listdir(d1))
        names2 = sorted(os.listdir(d2))
        if names1 != names2:
            return _finding(case, "snapshot", "snapshot:file-set",
                            f"checkpoint sets differ: {names1} vs {names2}")
        for name in names1:
            if not filecmp.cmp(os.path.join(d1, name),
                               os.path.join(d2, name), shallow=False):
                return _finding(case, "snapshot", "snapshot:bytes",
                                f"checkpoint {name} is not byte-identical "
                                f"across two write passes")
        newest = latest_snapshot(d1)
        if newest is not None:
            resumed = simulate_with_snapshots(
                trace, make(l1d), make(l2), warmup_fraction=wf,
                resume_from=newest).to_dict()
            if resumed != straight:
                keys = [k for k in straight
                        if resumed.get(k) != straight[k]]
                return _finding(case, "snapshot", "snapshot:resume-result",
                                f"resume from {os.path.basename(newest)} "
                                f"differs from straight run in {keys[:4]}")
    return None


def _strip_native_markers(result: dict) -> dict:
    """The native engine's ``native_*`` extra keys are reporting-only
    and excluded from the bit-identity contract."""
    result = dict(result)
    result["extra"] = {k: v for k, v in result.get("extra", {}).items()
                       if not k.startswith("native")}
    return result


def _native_leg(case: FuzzCase) -> Optional[FuzzFinding]:
    from repro.native.build import kernel_available

    if kernel_available()[0] is None:
        return None  # no compiler on this host: the leg degrades to a skip
    report = lockstep_engines(
        case.trace(),
        l1d=case.config.get("l1d", "berti"),
        l2=case.config.get("l2", "none"),
        warmup_fraction=case.config.get("warmup_fraction", 0.2),
        chunk_size=case.config.get("chunk_size", 0),
        seed_divergence=case.config.get("plant_divergence"),
        make=case.make(),
        engine="native",
    )
    if not report.ok:
        return _finding(case, "native", f"native:{report.field}",
                        report.describe())
    at = case.config.get("native_demote_at")
    if at is None:
        return None
    # Forced mid-span demotion: a run that flips from the C kernel to
    # the batched Python loop partway through must still land on the
    # batched result (modulo the native_* reporting markers).
    make = case.make()
    trace = case.trace()
    l1d, l2 = case.config.get("l1d", "berti"), case.config.get("l2", "none")
    wf = case.config.get("warmup_fraction", 0.2)
    cs = case.config.get("chunk_size", 0)
    ref = _strip_native_markers(simulate(
        trace, make(l1d), make(l2), warmup_fraction=wf,
        engine="batched", chunk_size=cs).to_dict())
    demoted = _strip_native_markers(simulate(
        trace, make(l1d), make(l2), warmup_fraction=wf,
        engine="native", chunk_size=cs, native_demote_at=at).to_dict())
    if demoted != ref:
        keys = [k for k in ref if demoted.get(k) != ref[k]]
        return _finding(case, "native", "native:demote-result",
                        f"forced demotion at access {at} diverges from "
                        f"the batched run in {keys[:4]}")
    return None


_LEGS = (
    ("engines", _engines_leg),
    ("reference", _reference_leg),
    ("snapshot", _snapshot_leg),
    ("native", _native_leg),
)


def run_case(case: FuzzCase) -> Optional[FuzzFinding]:
    """Run every applicable leg; the first finding wins (or ``None``)."""
    if case.expect == "reject":
        return _validity_leg(case)
    for leg, fn in _LEGS:
        try:
            found = fn(case)
        except Exception as exc:  # noqa: BLE001 — the oracle must not die
            return _exception_finding(case, leg, exc)
        if found is not None:
            return found
    return None
