"""Out-of-order core timing approximation.

The paper simulates an Intel Sunny Cove-like core (Table II: 6-issue,
4-retire, 352-entry ROB, 4 GHz).  Reproducing a full OoO pipeline in
Python would make the evaluation intractable, so we use a ROB-window
model that preserves the two properties prefetcher comparisons rest on:

1. **Latency hiding** — a load's latency only costs cycles when in-order
   retirement catches up to it; independent work and younger loads issue
   underneath it, bounded by the ROB size.
2. **Memory-level parallelism** — loads within one ROB window overlap;
   loads further apart serialise, so shaving latency off the *critical*
   misses (what a timely prefetcher does) directly raises IPC.

Mechanics: instruction *k* cannot issue before instruction *k − ROB* has
retired (in-order retirement, frontier tracked as a running max over load
completions); the frontend feeds at ``issue_width`` instructions/cycle and
the backend retires at most ``retire_width``/cycle.  Non-memory
instructions complete one cycle after issue, stores drain through a store
buffer and do not block retirement.

Load→load **dependencies** are first-class: a trace record may declare
that its address depends on the value returned by the *d*-th previous
load, in which case it cannot issue before that load completes.  This is
what makes pointer-chasing workloads (mcf, GAP kernels) latency-bound —
without it, a big ROB hides all cache latency and every prefetcher looks
useless.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Tuple


@dataclass
class CoreConfig:
    rob_size: int = 352
    issue_width: int = 6
    retire_width: int = 4
    #: how many recent load completions are kept for dependency lookups
    dependency_window: int = 64


class CoreModel:
    """Cycle accounting for one core."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()
        # Per-instruction increments, computed once: the same division
        # every issue would evaluate (bit-identical results, no per-call
        # attribute chain + divide).
        self._issue_incr = 1 / self.config.issue_width
        self._retire_incr = 1 / self.config.retire_width
        self._rob_size = self.config.rob_size
        self._frontend = 0.0          # cycles consumed by fetch/issue bandwidth
        self._retire_frontier = 0.0   # in-order retirement time so far
        self._rob_head_retire = 0.0   # retire time of the newest op <= k-ROB
        self._instr = 0
        # (instruction index, retire time) for loads still inside the ROB.
        self._window: Deque[Tuple[int, float]] = deque()
        # Completion times of the most recent loads (newest last), for
        # dependency resolution.
        self._load_completions: Deque[float] = deque(
            maxlen=self.config.dependency_window
        )

    # ------------------------------------------------------------------

    @property
    def instructions(self) -> int:
        return self._instr

    @property
    def cycles(self) -> float:
        # The retire frontier already folds in the retire-width floor, so
        # elapsed time is frontend- or retirement-bound, whichever is later.
        return max(self._frontend, self._retire_frontier)

    @property
    def ipc(self) -> float:
        cycles = self.cycles
        return self._instr / cycles if cycles > 0 else 0.0

    def now(self) -> int:
        """Current issue-time estimate, used to timestamp memory requests."""
        return int(max(self._frontend, self._rob_head_retire))

    # ------------------------------------------------------------------

    def advance_nonmem(self, count: int) -> None:
        """Account for ``count`` non-memory instructions."""
        if count <= 0:
            return
        self._instr += count
        self._frontend += count / self.config.issue_width
        # Retirement bandwidth is a hard floor on elapsed time.
        floor = self._instr / self.config.retire_width
        if floor > self._retire_frontier:
            self._retire_frontier = floor

    def issue_memory(
        self,
        demand: Callable[[int, int, int, bool], int],
        ip: int = 0,
        vaddr: int = 0,
        is_write: bool = False,
        dep: int = 0,
    ) -> int:
        """Issue one memory instruction.

        ``demand(ip, vaddr, issue_cycle, is_write)`` performs the
        hierarchy access at the computed issue time and returns the
        observed latency — the caller hoists the bound method (typically
        ``Hierarchy.demand_access``) once and passes the per-record
        arguments explicitly, so the hot loop allocates no closures.
        ``dep`` of *d* > 0 means this access's address depends on the
        value of the *d*-th previous load, which must complete first.
        Returns the issue cycle (useful to callers that track request
        times).
        """
        k = self._instr
        self._instr = k + 1
        frontend = self._frontend + self._issue_incr
        self._frontend = frontend

        # Pop window entries that have left the ROB; their retire times
        # lower-bound when instruction k may issue.
        horizon = k - self._rob_size
        window = self._window
        rob_head = self._rob_head_retire
        while window and window[0][0] <= horizon:
            __, retired = window.popleft()
            if retired > rob_head:
                rob_head = retired
        self._rob_head_retire = rob_head

        issue_t = frontend if frontend > rob_head else rob_head
        if dep > 0:
            loads = self._load_completions
            if dep <= len(loads):
                dep_ready = loads[-dep]
                if dep_ready > issue_t:
                    issue_t = dep_ready

        latency = demand(ip, vaddr, int(issue_t), is_write)

        if is_write:
            # Stores commit from the store buffer; they occupy the cache
            # but do not stall in-order retirement.
            completion = issue_t + 1
        else:
            completion = issue_t + latency
            self._load_completions.append(completion)

        retire = self._retire_frontier + self._retire_incr
        if completion > retire:
            retire = completion
        self._retire_frontier = retire
        window.append((k, retire))
        return int(issue_t)

    def snapshot(self) -> Tuple[int, float]:
        """(instructions, cycles) so far; clocks stay absolute.

        The engine records a snapshot at the warmup→measurement boundary
        and reports IPC over the delta (the paper warms for 50 M
        instructions and measures the next 200 M), without rebasing the
        clock that hierarchy timestamps depend on.
        """
        return self._instr, self.cycles
