"""Corner-case tests for the hierarchy: writeback cascades, per-core LLC
attribution, and stat-reset semantics."""

import pytest

from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.config import default_config
from repro.simulator.engine import build_hierarchy


class TestWritebacks:
    def test_dirty_cascade_reaches_dram(self):
        """A dirty line evicted from every level must become a DRAM write."""
        h = build_hierarchy(default_config())
        h.demand_access(0x400, 0x10000, 0, is_write=True)
        # Flood the whole hierarchy with conflicting clean lines.
        now = 10_000
        for i in range(1, 40_000):
            h.demand_access(0x400, 0x10000 + i * h.llc.num_sets * 64, now)
            now += 200
            if h.dram.stats.writes > 0:
                break
        assert h.dram.stats.writes > 0

    def test_clean_eviction_no_writeback(self):
        h = build_hierarchy(default_config())
        h.demand_access(0x400, 0x10000, 0)  # clean
        sets = h.l1d.num_sets
        for i in range(1, h.l1d.ways + 2):
            h.demand_access(0x400, 0x10000 + i * sets * 64, i * 3000)
        assert h.traffic_l1d_l2.writeback == 0


class TestPerCoreAttribution:
    def test_llc_counters_are_per_hierarchy(self):
        cfg = default_config()
        llc = Cache("llc", cfg.llc.size_bytes, cfg.llc.ways, cfg.llc.latency)
        dram = DRAM(cfg.dram)
        a = build_hierarchy(cfg, dram=dram, llc=llc, asid=1)
        b = build_hierarchy(cfg, dram=dram, llc=llc, asid=2)
        a.demand_access(0x400, 0x10000, 0)
        a.demand_access(0x400, 0x20000, 1000)
        b.demand_access(0x400, 0x10000, 2000)
        assert a.llc_demand_misses == 2
        assert b.llc_demand_misses == 1
        # The shared cache's own stats pool both cores.
        assert llc.stats.demand_misses == 3

    def test_dram_demand_reads_tracked(self):
        h = build_hierarchy(default_config())
        h.demand_access(0x400, 0x10000, 0)
        assert h.dram_demand_reads == 1
        # A hit adds nothing.
        h.demand_access(0x400, 0x10000, 100_000)
        assert h.dram_demand_reads == 1


class TestStatReset:
    def test_reset_preserves_contents(self):
        h = build_hierarchy(default_config())
        h.demand_access(0x400, 0x10000, 0)
        h.reset_stats()
        # Contents survive: the next access is a hit.
        h.demand_access(0x400, 0x10000, 100_000)
        assert h.l1d.stats.demand_hits == 1
        assert h.l1d.stats.demand_misses == 0

    def test_reset_clears_per_core_counters(self):
        h = build_hierarchy(default_config())
        h.demand_access(0x400, 0x10000, 0)
        h.reset_stats()
        assert h.llc_demand_misses == 0
        assert h.dram_demand_reads == 0

    def test_prefetcher_state_survives_reset(self):
        pf = make_prefetcher("berti")
        h = build_hierarchy(default_config(), pf)
        for i in range(40):
            h.demand_access(0x400, 0x10000 + i * 128, i * 500)
        inserts = pf.history.inserts
        h.reset_stats()
        assert pf.history.inserts == inserts  # learning is not reset
