"""Single-core simulation engine.

Drives a :class:`~repro.workloads.trace.Trace` through the core model and
the memory hierarchy, with a warmup region whose statistics are discarded
(the paper warms caches for 50 M instructions and measures 200 M; we use
a configurable fraction of the — much shorter — synthetic traces).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cpu.core_model import CoreModel
from repro.cpu.mmu import MMU
from repro.errors import ConfigError, ReproError, SimulationError, TraceError
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.hierarchy import Hierarchy
from repro.prefetchers.base import NoPrefetcher, Prefetcher
from repro.simulator.batched import DEFAULT_CHUNK_SIZE, make_batched_runner
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.stats import PrefetchSummary, SimResult
from repro.workloads.trace import Trace

#: Engines selectable via ``simulate(..., engine=...)`` and ``--engine``.
ENGINES = ("classic", "batched", "native")

#: ``native=`` policies for ``engine="native"``: ``auto`` demotes to the
#: batched path when the kernel is unavailable or a guard fires,
#: ``force`` raises ConfigError when the kernel cannot be built, ``off``
#: pins the batched fallback (for pinning the fallback in tests).
NATIVE_POLICIES = ("auto", "force", "off")


def validate_engine(engine: str, chunk_size: int, trace_name: str,
                    native: str = "auto") -> None:
    """Reject unknown engines / degenerate chunk sizes with field context."""
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r} (expected one of {', '.join(ENGINES)})",
            trace=trace_name,
            field="engine",
        )
    if native not in NATIVE_POLICIES:
        raise ConfigError(
            f"unknown native policy {native!r} (expected one of "
            f"{', '.join(NATIVE_POLICIES)})",
            trace=trace_name,
            field="native",
        )
    if chunk_size < 0:
        raise ConfigError(
            f"chunk_size must be >= 0 (0 selects the default "
            f"{DEFAULT_CHUNK_SIZE}), got {chunk_size}",
            trace=trace_name,
            field="chunk_size",
        )


def build_hierarchy(
    config: SystemConfig,
    l1d_prefetcher: Optional[Prefetcher] = None,
    l2_prefetcher: Optional[Prefetcher] = None,
    dram: Optional[DRAM] = None,
    llc: Optional[Cache] = None,
    asid: int = 0,
) -> Hierarchy:
    """Construct one core's hierarchy from a :class:`SystemConfig`.

    ``dram`` and ``llc`` can be shared between cores (multi-core runs).
    """
    mmu = MMU(
        dtlb_entries=config.dtlb_entries,
        dtlb_ways=config.dtlb_ways,
        dtlb_latency=config.dtlb_latency,
        stlb_entries=config.stlb_entries,
        stlb_ways=config.stlb_ways,
        stlb_latency=config.stlb_latency,
        page_walk_latency=config.page_walk_latency,
        asid=asid,
    )
    l1d = Cache(
        "l1d", config.l1d.size_bytes, config.l1d.ways, config.l1d.latency,
        replacement=config.l1d.replacement,
    )
    l2 = Cache(
        "l2", config.l2.size_bytes, config.l2.ways, config.l2.latency,
        replacement=config.l2.replacement,
    )
    if llc is None:
        llc = Cache(
            "llc", config.scaled_llc_size(), config.llc.ways,
            config.llc.latency, replacement=config.llc.replacement,
        )
    if dram is None:
        dram = DRAM(config.dram)
    return Hierarchy(
        mmu=mmu,
        dram=dram,
        l1d=l1d,
        l2=l2,
        llc=llc,
        l1d_mshr_size=config.l1d_mshr,
        l2_mshr_size=config.l2_mshr,
        pq_size=config.pq_size,
        l1d_prefetcher=l1d_prefetcher or NoPrefetcher(),
        l2_prefetcher=l2_prefetcher or NoPrefetcher(),
    )


@dataclass
class _Snapshot:
    instructions: int
    cycles: float


def _collect(
    trace: Trace,
    hierarchy: Hierarchy,
    core: CoreModel,
    start: _Snapshot,
) -> SimResult:
    res = SimResult(
        trace_name=trace.name,
        prefetcher_l1d=hierarchy.l1d_prefetcher.name,
        prefetcher_l2=hierarchy.l2_prefetcher.name,
    )
    res.instructions = core.instructions - start.instructions
    res.cycles = core.cycles - start.cycles

    l1d, l2, llc = hierarchy.l1d.stats, hierarchy.l2.stats, hierarchy.llc.stats
    res.l1d_demand_accesses = l1d.demand_accesses
    res.l1d_demand_misses = l1d.demand_misses
    res.l2_demand_accesses = l2.demand_accesses
    res.l2_demand_misses = l2.demand_misses
    # LLC counters come from the hierarchy's per-core attribution (the
    # LLC object itself may be shared between cores in multi-core runs).
    res.llc_demand_accesses = hierarchy.llc_demand_accesses
    res.llc_demand_misses = hierarchy.llc_demand_misses
    res.l1d_writebacks = l1d.writebacks
    res.l2_writebacks = l2.writebacks
    res.llc_writebacks = llc.writebacks
    res.l1d_prefetch_fills = l1d.prefetch_fills
    res.l2_prefetch_fills = l2.prefetch_fills
    res.llc_prefetch_fills = llc.prefetch_fills

    for origin, target in (("l1d", res.pf_l1d), ("l2", res.pf_l2)):
        src = hierarchy.pf_stats[origin]
        target.issued = src.issued
        target.fills = src.fills
        target.useful = src.useful
        target.late = src.late
        target.useless = src.useless
        target.promoted = src.promoted
        target.dropped_translation = src.dropped_translation
        target.dropped_duplicate = src.dropped_duplicate
        target.dropped_queue_full = src.dropped_queue_full
        target.dropped_mshr_full = src.dropped_mshr_full

    res.traffic_l1d_l2 = hierarchy.traffic_l1d_l2.total
    res.traffic_l2_llc = hierarchy.traffic_l2_llc.total
    res.traffic_llc_dram = hierarchy.traffic_llc_dram.total

    d = hierarchy.dram.stats
    res.dram_reads = d.reads
    res.dram_writes = d.writes
    res.dram_row_hits = d.row_hits
    res.dram_row_misses = d.row_misses + d.row_conflicts
    res.avg_dram_read_latency = d.avg_read_latency
    return res


def simulate(
    trace: Trace,
    l1d_prefetcher: Optional[Prefetcher] = None,
    l2_prefetcher: Optional[Prefetcher] = None,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    prewarm_tlb: bool = True,
    post_build: Optional[Callable[[Hierarchy], None]] = None,
    progress: Optional[Callable[[int], None]] = None,
    progress_every: int = 0,
    engine: str = "classic",
    chunk_size: int = 0,
    native: str = "auto",
    native_demote_at: Optional[int] = None,
) -> SimResult:
    """Run one trace on one core and return its measured statistics.

    ``warmup_fraction`` of the records train caches/TLBs/prefetchers with
    statistics discarded, mirroring the paper's 50 M-instruction warmup.
    ``prewarm_tlb`` additionally installs the trace's page translations
    into the STLB up front — the steady state a 50 M-instruction warmup
    reaches for any footprint within the STLB's 8 MB reach.
    ``post_build`` is an extension hook invoked with the freshly built
    hierarchy before the run starts — used by the fault-injection
    harness (:mod:`repro.runner.faultinject`) and by instrumentation.
    ``progress``, when set, is called with the number of records consumed
    every ``progress_every`` records — the supervisor's heartbeat hook.
    It only splits the record spans at chunk boundaries (the same split
    the snapshot machinery relies on), so results are bit-identical and
    the default path (``progress=None``) is untouched.
    ``engine`` selects the inner loop: ``"classic"`` is the per-record
    virtual-dispatch loop, ``"batched"`` the fused columnar loop of
    :mod:`repro.simulator.batched` (bit-identical; demotes itself to the
    classic loop when instrumentation or subclassed structures are
    present), ``"native"`` the C span kernel of :mod:`repro.native`
    (bit-identical; demotes span-by-span to the batched path under the
    same guards plus its own).  ``chunk_size`` sets the batched/native
    span length (0 → ``DEFAULT_CHUNK_SIZE``); the classic engine ignores
    it.  ``native`` picks the native policy: ``"auto"`` falls back
    silently-but-recorded, ``"force"`` raises
    :class:`~repro.errors.ConfigError` when no kernel can be built,
    ``"off"`` pins the batched fallback.  ``native_demote_at`` forces
    demotion for every span extending past that record index (fuzz /
    test hook).  For ``engine="native"`` the result's ``extra`` carries
    ``native_spans`` / ``native_demoted_spans`` markers (plus
    ``native_demoted`` / ``native_demotion_code`` after a fallback) —
    strip ``native_*`` keys before cross-engine dict comparisons.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}",
            trace=trace.name,
            field="warmup_fraction",
        )
    validate_engine(engine, chunk_size, trace.name, native)
    if len(trace) == 0:
        # An empty trace used to fall through the warmup validation
        # (guarded by n > 0) and silently return all-zero statistics;
        # surface it as the malformed-input error it is.
        raise TraceError(
            f"trace {trace.name!r} has no records",
            trace=trace.name,
        )
    config = config or default_config()
    hierarchy = build_hierarchy(config, l1d_prefetcher, l2_prefetcher)
    if post_build is not None:
        post_build(hierarchy)
    core = CoreModel(config.core)

    n = len(trace)
    if prewarm_tlb:
        hierarchy.mmu.prewarm(trace.line_addresses())
    warmup_end = int(n * warmup_fraction)
    if warmup_end >= n:
        raise ConfigError(
            "warmup_fraction leaves no measured records",
            trace=trace.name,
            field="warmup_fraction",
        )
    carryover = {"l1d": 0, "l2": 0}

    native_runner = None
    if engine == "batched":
        _run_span = make_batched_runner(trace, hierarchy, core, chunk_size)
    elif engine == "native":
        if native == "off":
            _run_span = make_batched_runner(trace, hierarchy, core,
                                            chunk_size)
        else:
            from repro.native.build import kernel_available
            from repro.native.runner import make_native_runner

            if native == "force":
                fn, diag = kernel_available()
                if fn is None:
                    raise ConfigError(
                        f"engine='native' with native='force' but the "
                        f"kernel is unavailable: {diag}",
                        trace=trace.name,
                        field="engine",
                    )
            native_runner = make_native_runner(
                trace, hierarchy, core, chunk_size, native_demote_at,
            )
            _run_span = native_runner
    else:
        # Hot loop: columnar iteration over the trace's arrays, with the
        # demand callback hoisted once (no closure allocation per record).
        # The warmup → measurement boundary splits the loop in two so the
        # measured span carries no per-record boundary check.
        demand = hierarchy.demand_access
        issue = core.issue_memory
        advance = core.advance_nonmem
        ips, addrs, writes, gaps, deps = trace.columns()

        l1d_stats = hierarchy.l1d.stats

        def _run_span(lo: int, hi: int) -> None:
            # The try/except is zero-cost on the no-raise path (3.11+)
            # and turns any internal failure into a typed SimulationError
            # that names the record the run died on.  The index is
            # recovered from the demand-access counter (one increment per
            # record) rather than a per-record loop counter, so the hot
            # loop is untouched.
            base = l1d_stats.demand_accesses
            try:
                for ip, vaddr, is_write, gap, dep in zip(
                    ips[lo:hi], addrs[lo:hi], writes[lo:hi], gaps[lo:hi],
                    deps[lo:hi],
                ):
                    if gap:
                        advance(gap)
                    issue(demand, ip, vaddr, is_write, dep)
            except ReproError:
                raise  # already typed (incl. SanitizerError w/ exact index)
            except Exception as exc:
                done = l1d_stats.demand_accesses - base
                raise SimulationError(
                    f"simulation crashed at record ~{lo + done} "
                    f"({done} accesses into span [{lo}, {hi})): "
                    f"{type(exc).__name__}: {exc}",
                    trace=trace.name,
                    prefetcher=hierarchy.l1d_prefetcher.name,
                    field="record_index",
                ) from exc

    if progress is not None and progress_every > 0:
        # Heartbeat mode: run each span in chunks, pinging between them.
        # Splitting a span at a record boundary performs exactly the same
        # operations in the same order, so results stay bit-identical.
        def _run(lo: int, hi: int) -> None:
            i = lo
            while i < hi:
                j = min(i + progress_every, hi)
                _run_span(i, j)
                progress(j)
                i = j
    else:
        _run = _run_span

    # Suspend the cyclic garbage collector for the hot loop: the run
    # allocates steadily (cache lines, MSHR entries) and repeatedly trips
    # generational collections that find almost nothing — reference
    # counting reclaims the simulator's objects.  The few true cycles
    # (hierarchy ↔ eviction-hook closures) are picked up by the next
    # collection after gc is re-enabled.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        _run(0, warmup_end)
        if warmup_end > 0:
            hierarchy.reset_stats()
            carryover = hierarchy.prefetched_line_counts()
            snap_i, snap_c = core.snapshot()
            start = _Snapshot(snap_i, snap_c)
        else:
            start = _Snapshot(0, 0.0)
        _run(warmup_end, n)
    finally:
        if gc_was_enabled:
            gc.enable()
    res = _collect(trace, hierarchy, core, start)
    # Prefetched lines still resident (or in flight) at the end of warmup
    # can be demanded — and credited as useful — after the stats reset.
    # The invariant checker needs this to bound useful <= issued + carry.
    res.extra["pf_carryover_l1d"] = float(carryover["l1d"])
    res.extra["pf_carryover_l2"] = float(carryover["l2"])
    if engine == "native":
        if native_runner is not None:
            res.extra["native_spans"] = float(native_runner.native_spans)
            res.extra["native_demoted_spans"] = float(
                native_runner.demoted_spans)
            if native_runner.demotion_code is not None:
                res.extra["native_demoted"] = 1.0
                res.extra["native_demotion_code"] = float(
                    native_runner.demotion_code)
        else:  # native="off": the batched fallback was pinned explicitly
            res.extra["native_spans"] = 0.0
            res.extra["native_demoted_spans"] = 0.0
    return res
