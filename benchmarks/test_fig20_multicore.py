"""Figure 20: 4-core heterogeneous-mix speedups.

Paper reference: over 200 random mixes, Berti is the best L1D prefetcher
(+16.2 % vs IP-stride — larger than single-core because accurate
prefetching wastes none of the contended DRAM bandwidth); Berti alone
also beats MLOP+Bingo, the DPC-3 podium combination.

We run a reduced mix count (env ``REPRO_BENCH_MIXES``, default 6) on the
cached suites.
"""

import os

from common import SCALE, all_memint_traces, once, save_report

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.multicore import simulate_multicore, weighted_speedup
from repro.workloads.mixes import random_mixes

NUM_MIXES = int(os.environ.get("REPRO_BENCH_MIXES", "6"))

CONFIGS = [
    ("ip_stride", "none"),
    ("mlop", "none"),
    ("ipcp", "none"),
    ("berti", "none"),
    ("mlop", "bingo"),
]


def test_fig20_multicore_mixes(benchmark):
    def compute():
        mixes = random_mixes(
            NUM_MIXES, cores=4, seed=13, pool=all_memint_traces()
        )
        per_config = {f"{a}+{b}" if b != "none" else a: []
                      for a, b in CONFIGS}
        for mix in mixes:
            base = simulate_multicore(
                mix, [make_prefetcher("ip_stride") for _ in mix]
            )
            for a, b in CONFIGS:
                name = f"{a}+{b}" if b != "none" else a
                res = simulate_multicore(
                    mix,
                    [make_prefetcher(a) for _ in mix],
                    [make_prefetcher(b) for _ in mix],
                )
                per_config[name].append(weighted_speedup(res, base))
        return {k: geomean(v) for k, v in per_config.items()}

    speeds = once(benchmark, compute)
    rows = [[name, s] for name, s in
            sorted(speeds.items(), key=lambda kv: -kv[1])]
    save_report(
        "fig20_multicore",
        format_table(
            ["configuration", "geomean weighted speedup"], rows,
            title=(
                f"Figure 20 — 4-core mixes ({NUM_MIXES} mixes, scale "
                f"{SCALE})\n(paper: Berti best, +16.2%, and above"
                " MLOP+Bingo)"
            ),
        ),
    )

    assert speeds["berti"] >= max(speeds["mlop"], speeds["ipcp"]) - 0.05
    assert speeds["berti"] > 1.0
    # Berti alone competitive with the heavy MLOP+Bingo combination.
    assert speeds["berti"] >= speeds["mlop+bingo"] - 0.05
