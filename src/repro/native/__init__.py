"""Opt-in native backend: C span kernel behind a bit-identity gate.

``engine="native"`` runs each simulation span through a small C shared
object compiled at first use (:mod:`repro.native.build`) over the same
columnar buffers the batched engine reads (:mod:`repro.native.marshal`,
zero-copy for the trace columns and Berti history rings).  Every guard
that demotes the batched engine also demotes the native one, plus a few
of its own (:func:`repro.native.runner.native_mode`); demoted spans run
on the batched Python path and produce bit-identical results.
"""

from .build import (
    NativeBuildError,
    build_kernel,
    cache_dir,
    find_compiler,
    kernel_available,
    kernel_key,
    reset_build_cache,
)
from .marshal import BUFS, FREGS, REGISTERS, NativeState, layout_digest
from .runner import (
    DEMOTION_REASONS,
    NativeRunner,
    make_native_runner,
    native_mode,
)

__all__ = [
    "BUFS",
    "DEMOTION_REASONS",
    "FREGS",
    "NativeBuildError",
    "NativeRunner",
    "NativeState",
    "REGISTERS",
    "build_kernel",
    "cache_dir",
    "find_compiler",
    "kernel_available",
    "kernel_key",
    "layout_digest",
    "make_native_runner",
    "native_mode",
    "reset_build_cache",
]
