"""Feedback-directed prefetch throttling (FDP) — Srinath et al., HPCA 2007.

The paper's related work (§V) discusses aggressiveness controllers that
tune prefetch degree from observed accuracy/lateness/pollution, and
claims that Berti does not need one: *"with Berti, the accuracy is
significantly higher than prior prefetching techniques, and the implicit
confidence mechanism acts like a prefetch throttler."*

:class:`FDPThrottle` wraps any L1D prefetcher with the classic FDP
control loop so the claim can be tested (see
``benchmarks/test_ablation_throttling.py``):

* an epoch counter tracks issued/useful/late outcomes;
* at each epoch end the measured accuracy and lateness select an
  aggressiveness level per Srinath's decision table;
* the level scales how many of the wrapped prefetcher's requests are
  forwarded (its effective degree) and how deep they fill.
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    FillInfo,
    Prefetcher,
    PrefetchRequest,
)

# Aggressiveness levels: (max requests forwarded per access, allow L1 fill)
_LEVELS = [
    (1, False),   # very conservative
    (2, False),
    (4, True),
    (8, True),
    (16, True),   # very aggressive
]


class FDPThrottle(Prefetcher):
    """Classic accuracy/lateness feedback throttle around a prefetcher."""

    level = "l1d"

    HIGH_ACCURACY = 0.75
    LOW_ACCURACY = 0.40
    HIGH_LATENESS = 0.40
    EPOCH = 256  # issued prefetches per evaluation epoch

    def __init__(self, inner: Prefetcher, start_level: int = 2) -> None:
        self.inner = inner
        self.name = f"fdp({inner.name})"
        self._level = start_level
        # Epoch counters (fed by the hierarchy's feedback hooks).
        self._issued = 0
        self._useful = 0
        self._late = 0
        self._useless = 0
        self.level_changes = 0

    # ------------------------------------------------------------------

    @property
    def aggressiveness(self) -> int:
        return self._level

    def _epoch_update(self) -> None:
        resolved = self._useful + self._useless
        if resolved == 0:
            return
        accuracy = self._useful / resolved
        lateness = self._late / max(1, self._useful)
        old = self._level
        if accuracy >= self.HIGH_ACCURACY:
            if lateness >= self.HIGH_LATENESS:
                self._level = min(len(_LEVELS) - 1, self._level + 1)
            # accurate and timely: keep the level
        elif accuracy <= self.LOW_ACCURACY:
            self._level = max(0, self._level - 1)
        else:
            if lateness >= self.HIGH_LATENESS:
                self._level = min(len(_LEVELS) - 1, self._level + 1)
            else:
                self._level = max(0, self._level - 1)
        if self._level != old:
            self.level_changes += 1
        self._issued = 0
        self._useful = 0
        self._late = 0
        self._useless = 0

    def _filter(self, requests: List[PrefetchRequest]) -> List[PrefetchRequest]:
        max_requests, allow_l1 = _LEVELS[self._level]
        out = []
        for req in requests[:max_requests]:
            if not allow_l1 and req.fill_level == FILL_L1:
                req.fill_level = FILL_L2
            out.append(req)
        self._issued += len(out)
        if self._issued >= self.EPOCH:
            self._epoch_update()
        return out

    # ------------------------------------------------------------------
    # Prefetcher interface: delegate, filter outgoing requests.
    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        return self._filter(self.inner.on_access(access))

    def on_fill(self, fill: FillInfo) -> List[PrefetchRequest]:
        return self._filter(self.inner.on_fill(fill))

    def on_prefetch_hit(self, access: AccessInfo, pf_latency: int) -> None:
        self._useful += 1
        if pf_latency == 0:
            self._late += 1
        self.inner.on_prefetch_hit(access, pf_latency)

    def on_evict(self, line: int, was_useful: bool) -> None:
        if not was_useful:
            self._useless += 1
        self.inner.on_evict(line, was_useful)

    def cycle(self, now: int) -> List[PrefetchRequest]:
        return self._filter(self.inner.cycle(now))

    def storage_bits(self) -> int:
        # Inner tables + four 16-bit epoch counters and the level.
        return self.inner.storage_bits() + 4 * 16 + 3

    def reset(self) -> None:
        self.inner.reset()
        self._level = 2
        self._issued = self._useful = self._late = self._useless = 0
        self.level_changes = 0
