"""Tests for the single-core simulation engine."""

import pytest

from repro import BertiPrefetcher, SystemConfig, default_config, simulate
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.spec_like import stream_trace
from repro.workloads.synthetic import make_trace, pointer_chase, strided_stream
from repro.workloads.trace import Trace


@pytest.fixture(scope="module")
def stream():
    return stream_trace(0.3)


@pytest.fixture(scope="module")
def chase():
    return make_trace(
        "chase",
        [pointer_chase(0x402, 0x1000000, [-1], 2500, gap=10,
                       region_lines=4096)],
    )


class TestBasics:
    def test_result_fields(self, stream):
        r = simulate(stream)
        assert r.trace_name == "stream"
        assert r.instructions > 0
        assert r.cycles > 0
        assert 0 < r.ipc < 8

    def test_deterministic(self, stream):
        a = simulate(stream)
        b = simulate(stream)
        assert a.ipc == b.ipc
        assert a.l1d_demand_misses == b.l1d_demand_misses

    def test_prefetcher_names_recorded(self, stream):
        r = simulate(stream, l1d_prefetcher=make_prefetcher("berti"),
                     l2_prefetcher=make_prefetcher("bingo"))
        assert r.prefetcher_l1d == "berti"
        assert r.prefetcher_l2 == "bingo"

    def test_warmup_excluded_from_stats(self, stream):
        full = simulate(stream, warmup_fraction=0.0)
        warmed = simulate(stream, warmup_fraction=0.5)
        assert warmed.instructions < full.instructions

    def test_warmup_full_raises(self, stream):
        with pytest.raises(ValueError):
            simulate(stream, warmup_fraction=1.0)

    def test_mpki_definition(self, stream):
        r = simulate(stream)
        assert r.l1d_mpki == pytest.approx(
            r.l1d_demand_misses * 1000 / r.instructions
        )


class TestPrefetchingEffects:
    def test_berti_speeds_up_dependent_chase(self, chase):
        base = simulate(chase)
        berti = simulate(chase, l1d_prefetcher=BertiPrefetcher())
        assert berti.speedup_over(base) > 1.3
        assert berti.pf_l1d.accuracy > 0.8

    def test_berti_reduces_l1d_mpki(self, chase):
        base = simulate(chase)
        berti = simulate(chase, l1d_prefetcher=BertiPrefetcher())
        assert berti.l1d_mpki < base.l1d_mpki

    def test_prefetch_increases_traffic_at_most_modestly(self, chase):
        base = simulate(chase)
        berti = simulate(chase, l1d_prefetcher=BertiPrefetcher())
        # Accurate prefetching shifts traffic, it does not multiply it.
        assert berti.traffic_llc_dram < base.traffic_llc_dram * 1.5

    def test_prewarm_tlb_off_drops_more(self, chase):
        warm = simulate(chase, l1d_prefetcher=BertiPrefetcher())
        cold = simulate(chase, l1d_prefetcher=BertiPrefetcher(),
                        prewarm_tlb=False)
        assert cold.pf_l1d.dropped_translation >= warm.pf_l1d.dropped_translation


class TestConfig:
    def test_dram_bandwidth_knob(self, stream):
        fast = simulate(stream, config=default_config())
        slow = simulate(stream, config=default_config().with_dram_mtps(1600))
        assert slow.ipc <= fast.ipc

    def test_with_dram_mtps_copies(self):
        cfg = default_config()
        cfg2 = cfg.with_dram_mtps(1600)
        assert cfg.dram.mtps == 6400
        assert cfg2.dram.mtps == 1600

    def test_llc_scaling(self):
        cfg = default_config()
        assert cfg.scaled_llc_size() == 2 * 1024 * 1024
        from dataclasses import replace
        cfg4 = replace(cfg, num_cores=4)
        assert cfg4.scaled_llc_size() == 8 * 1024 * 1024

    def test_summary_line(self, stream):
        r = simulate(stream)
        assert "stream" in r.summary_line()
