"""Generic parameter-sweep helper for sensitivity studies.

The paper's §IV-J sweeps (watermarks, table sizes, latency bits) and the
DRAM-bandwidth study all share a shape: vary one knob, re-simulate a
trace set, and report geomean speedup against a fixed baseline.  This
module packages that shape so new studies are one function call:

    from repro.analysis.sweep import sweep
    result = sweep(
        traces,
        baseline=lambda: make_prefetcher("ip_stride"),
        variants={
            "default": lambda: BertiPrefetcher(),
            "no-cross-page": lambda: BertiPrefetcher(cfg_no_cp),
        },
    )
    print(result.to_table())

Runs execute through :class:`repro.runner.ExperimentRunner` (inline by
default, since factories are usually closures and can't cross a process
boundary): a variant that crashes on one trace is recorded in
``result.failures`` and excluded from that variant's geomean instead of
killing the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.prefetchers.base import Prefetcher
from repro.runner import (
    CallableJob,
    ExperimentRunner,
    FailedRun,
    RunnerConfig,
    run_callable,
)
from repro.simulator.config import SystemConfig
from repro.simulator.engine import simulate
from repro.simulator.stats import SimResult
from repro.workloads.trace import Trace

PrefetcherFactory = Callable[[], Optional[Prefetcher]]


@dataclass
class SweepResult:
    """Per-variant geomean speedups plus the raw per-trace results."""

    speedups: Dict[str, float] = field(default_factory=dict)
    per_trace: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)
    failures: List[FailedRun] = field(default_factory=list)

    def best(self) -> str:
        return max(self.speedups, key=self.speedups.get)

    def to_table(self, title: str = "sweep") -> str:
        rows = [
            [name, speed]
            for name, speed in sorted(
                self.speedups.items(), key=lambda kv: -kv[1]
            )
        ]
        return format_table(["variant", "geomean speedup"], rows, title=title)


def _job_key(trace_name: str, variant: str) -> str:
    return f"{trace_name}::{variant}"


def sweep(
    traces: Sequence[Trace],
    baseline: PrefetcherFactory,
    variants: Mapping[str, PrefetcherFactory],
    l2_factories: Optional[Mapping[str, PrefetcherFactory]] = None,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    runner: Optional[ExperimentRunner] = None,
) -> SweepResult:
    """Run every variant over every trace against a shared baseline.

    ``baseline`` and each variant are *factories* so every run gets a
    fresh, untrained prefetcher.  ``l2_factories`` optionally pairs a
    variant name with an L2 prefetcher factory.  A custom ``runner``
    can add retries or a checkpoint journal; the default runs inline
    with one retry and fault isolation.
    """
    result = SweepResult()
    runner = runner or ExperimentRunner(RunnerConfig(workers=0))

    def make_job(trace: Trace, variant: str,
                 factory: PrefetcherFactory,
                 l2_factory: Optional[PrefetcherFactory]) -> CallableJob:
        def thunk() -> SimResult:
            return simulate(
                trace,
                l1d_prefetcher=factory(),
                l2_prefetcher=l2_factory() if l2_factory else None,
                config=config,
                warmup_fraction=warmup_fraction,
            )
        return CallableJob(key=_job_key(trace.name, variant), fn=thunk)

    jobs: List[CallableJob] = []
    for trace in traces:
        jobs.append(make_job(trace, "baseline", baseline, None))
    for name, factory in variants.items():
        l2_factory = (l2_factories or {}).get(name)
        for trace in traces:
            jobs.append(make_job(trace, name, factory, l2_factory))

    suite = runner.run(jobs, run_fn=run_callable)
    result.failures = suite.failures
    by_key = suite.results_by_key()

    bases: Dict[str, SimResult] = {}
    for trace in traces:
        base = by_key.get(_job_key(trace.name, "baseline"))
        if base is not None:
            bases[trace.name] = base
            result.per_trace[trace.name] = {"baseline": base}
        else:
            result.per_trace[trace.name] = {}

    for name in variants:
        ratios: List[float] = []
        for trace in traces:
            run = by_key.get(_job_key(trace.name, name))
            if run is None:
                continue  # failed job: recorded in result.failures
            result.per_trace[trace.name][name] = run
            base = bases.get(trace.name)
            if base is not None:
                ratios.append(run.speedup_over(base))
        result.speedups[name] = geomean(ratios) if ratios else 0.0
    return result


def knob_sweep(
    traces: Sequence[Trace],
    baseline: PrefetcherFactory,
    make_variant: Callable[[float], Optional[Prefetcher]],
    values: Sequence[float],
    label: str = "knob",
    config: Optional[SystemConfig] = None,
) -> SweepResult:
    """Sweep a single numeric knob: ``make_variant(value)`` per point."""
    variants = {
        f"{label}={v}": (lambda v=v: make_variant(v)) for v in values
    }
    return sweep(traces, baseline, variants, config=config)
