"""Integration tests for the cache hierarchy."""

import pytest

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    FILL_LLC,
    AccessInfo,
    NoPrefetcher,
    Prefetcher,
    PrefetchRequest,
)
from repro.simulator.config import default_config
from repro.simulator.engine import build_hierarchy


def fresh(l1d_pf=None, l2_pf=None):
    return build_hierarchy(default_config(), l1d_pf, l2_pf)


class _OneShot(Prefetcher):
    """Issues a single fixed request on the first access."""

    name = "oneshot"

    def __init__(self, line, fill_level):
        self.req = PrefetchRequest(line=line, fill_level=fill_level)
        self.fired = False

    def on_access(self, access):
        if self.fired:
            return []
        self.fired = True
        return [self.req]


class TestDemandPath:
    def test_cold_miss_walks_to_dram(self):
        h = fresh()
        lat = h.demand_access(0x400, 0x10000, now=0)
        assert lat > 100  # page walk + three levels + DRAM
        assert h.dram.stats.reads == 1
        assert h.l1d.stats.demand_misses == 1

    def test_second_access_hits_l1d(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        lat = h.demand_access(0x400, 0x10000, 10_000)
        assert lat <= h.l1d.latency + h.mmu.dtlb.latency
        assert h.l1d.stats.demand_hits == 1

    def test_fill_populates_all_levels(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        pline = h.mmu.translate_prefetch(0x10000 >> 6)
        assert h.l1d.probe(pline)
        assert h.l2.probe(pline)
        assert h.llc.probe(pline)

    def test_l2_hit_after_l1d_eviction(self):
        h = fresh()
        # Fill the L1D set of line X with conflicting lines.
        h.demand_access(0x400, 0x10000, 0)
        sets = h.l1d.num_sets
        for i in range(1, h.l1d.ways + 1):
            h.demand_access(0x400, 0x10000 + i * sets * 64, i * 3000)
        before = h.l2.stats.demand_hits
        h.demand_access(0x400, 0x10000, 10_000_000)
        assert h.l2.stats.demand_hits == before + 1

    def test_second_demand_to_inflight_line_waits_residual(self):
        h = fresh()
        lat_first = h.demand_access(0x400, 0x10000, 0)
        # Second demand to the same line (byte 32) while in flight: it
        # must wait only the residual, not issue a second fetch.
        lat_second = h.demand_access(0x401, 0x10020, 1)
        assert h.dram.stats.reads == 1
        assert lat_second <= lat_first

    def test_store_marks_dirty_and_writeback_traffic(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0, is_write=True)
        sets = h.l1d.num_sets
        for i in range(1, h.l1d.ways + 2):
            h.demand_access(0x400, 0x10000 + i * sets * 64, i * 3000)
        assert h.traffic_l1d_l2.writeback >= 1

    def test_translation_latency_included(self):
        h = fresh()
        lat_cold = h.demand_access(0x400, 0x10000, 0)
        # Same page: dTLB hit, same L1D line -> much cheaper.
        lat_warm = h.demand_access(0x400, 0x10000, 50_000)
        assert lat_cold - lat_warm >= h.mmu.page_walk_latency


class TestPrefetchIssue:
    def _warm_page(self, h, vline):
        h.demand_access(0x1, vline << 6, 0)

    def test_fill_l1_installs_to_l1(self):
        h = fresh()
        self._warm_page(h, 0x900)
        pf = _OneShot(0x901, FILL_L1)
        h.l1d_prefetcher = pf
        h.demand_access(0x2, 0x900 << 6, 5000)
        pline = h.mmu.translate_prefetch(0x901)
        assert h.l1d.probe(pline)
        assert h.pf_stats["l1d"].issued == 1

    def test_fill_l2_stops_at_l2(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x902, FILL_L2)
        h.demand_access(0x2, 0x900 << 6, 5000)
        pline = h.mmu.translate_prefetch(0x902)
        assert not h.l1d.probe(pline)
        assert h.l2.probe(pline)

    def test_fill_llc_stops_at_llc(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x903, FILL_LLC)
        h.demand_access(0x2, 0x900 << 6, 5000)
        pline = h.mmu.translate_prefetch(0x903)
        assert not h.l2.probe(pline)
        assert h.llc.probe(pline)

    def test_cold_page_prefetch_dropped(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0xFFFF0, FILL_L1)  # untouched page
        h.demand_access(0x2, 0x900 << 6, 5000)
        assert h.pf_stats["l1d"].dropped_translation == 1
        assert h.pf_stats["l1d"].issued == 0

    def test_duplicate_prefetch_dropped(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x900, FILL_L1)  # already resident
        h.demand_access(0x2, 0x900 << 6, 50_000)
        assert h.pf_stats["l1d"].dropped_duplicate == 1

    def test_useful_prefetch_accounting(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x905, FILL_L1)
        h.demand_access(0x2, 0x900 << 6, 5000)
        h.l1d_prefetcher = NoPrefetcher()
        h.demand_access(0x3, 0x905 << 6, 1_000_000)  # long after arrival
        s = h.pf_stats["l1d"]
        assert s.useful == 1 and s.late == 0

    def test_late_prefetch_accounting(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x905, FILL_L1)
        h.demand_access(0x2, 0x900 << 6, 5000)
        h.l1d_prefetcher = NoPrefetcher()
        h.demand_access(0x3, 0x905 << 6, 5001)  # before the data arrives
        s = h.pf_stats["l1d"]
        assert s.useful == 1 and s.late == 1

    def test_useless_prefetch_accounting(self):
        h = fresh()
        self._warm_page(h, 0x900)
        h.l1d_prefetcher = _OneShot(0x905, FILL_L1)
        h.demand_access(0x2, 0x900 << 6, 5000)
        h.l1d_prefetcher = NoPrefetcher()
        pline = h.mmu.translate_prefetch(0x905)
        # Evict the prefetched line from every level without touching it.
        for cache in (h.l1d, h.l2, h.llc):
            cache.invalidate(pline)
            cache.eviction_hook(
                type(cache.peek(0) or object, (), {})
            ) if False else None
        # Direct path: force eviction accounting through the hook.
        h.pf_stats["l1d"].useless = 0
        from repro.memory.cache import CacheLine
        victim = CacheLine(tag=pline, valid=True, prefetched=True,
                           pf_origin="l1d")
        h.l1d.eviction_hook(victim)
        assert h.pf_stats["l1d"].useless == 1

    def test_pq_overflow_drops(self):
        h = fresh()
        self._warm_page(h, 0x900)

        class Flood(Prefetcher):
            name = "flood"

            def on_access(self, access):
                return [
                    PrefetchRequest(line=0x900 + 2 + i, fill_level=FILL_L2)
                    for i in range(40)
                ]

        h.l1d_prefetcher = Flood()
        h.demand_access(0x2, 0x900 << 6, 5000)
        assert h.pf_stats["l1d"].dropped_queue_full > 0


class TestTraffic:
    def test_demand_traffic_counted_per_link(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        assert h.traffic_l1d_l2.demand == 1
        assert h.traffic_l2_llc.demand == 1
        assert h.traffic_llc_dram.demand == 1

    def test_l1d_hit_generates_no_traffic(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        before = h.traffic_l1d_l2.total
        h.demand_access(0x400, 0x10000, 50_000)
        assert h.traffic_l1d_l2.total == before

    def test_reset_stats(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        h.reset_stats()
        assert h.traffic_l1d_l2.total == 0
        assert h.l1d.stats.demand_accesses == 0
        assert h.dram.stats.reads == 0


class TestL2Prefetcher:
    def test_l2_prefetcher_sees_l2_accesses(self):
        seen = []

        class Spy(Prefetcher):
            name = "spy"
            level = "l2"

            def on_access(self, access):
                seen.append(access.line)
                return []

        h = fresh(l2_pf=Spy())
        h.demand_access(0x400, 0x10000, 0)       # L2 miss -> seen
        h.demand_access(0x400, 0x10000, 50_000)  # L1D hit -> not seen
        assert len(seen) == 1

    def test_l2_prefetch_issue_and_credit(self):
        h = fresh()
        h.demand_access(0x400, 0x10000, 0)
        pline = h.mmu.translate_prefetch(0x10000 >> 6)
        req = PrefetchRequest(line=pline + 1, fill_level=FILL_L2)
        assert h.issue_l2_prefetch(req, ip=0x400, now=1000)
        assert h.l2.probe(pline + 1)
        assert h.pf_stats["l2"].issued == 1
