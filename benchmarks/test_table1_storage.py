"""Table I: storage overhead of Berti (2.55 KB total)."""

from common import once, save_report

from repro.analysis.report import format_table
from repro.core.config import BertiConfig


def test_table1_storage_breakdown(benchmark):
    def build():
        return BertiConfig().storage_breakdown_kb()

    breakdown = once(benchmark, build)

    paper = {
        "history_table": 0.74,
        "table_of_deltas": 0.62,
        "pq_mshr_timestamps": 0.06,
        "l1d_latency_fields": 1.13,
        "total": 2.55,
    }
    rows = [
        [name, paper[name], round(kb, 3)]
        for name, kb in breakdown.items()
    ]
    save_report(
        "table1_storage",
        format_table(
            ["structure", "paper KB", "measured KB"], rows,
            title="Table I — Berti storage overhead",
        ),
    )
    for name, kb in breakdown.items():
        assert abs(kb - paper[name]) < 0.03, name
