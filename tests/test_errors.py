"""Tests for the structured exception hierarchy."""

import pickle

import pytest

from repro.errors import (
    ConfigError,
    JobTimeout,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.runner.jobs import classify_error


class TestHierarchy:
    def test_all_subclass_repro_error(self):
        for cls in (TraceError, ConfigError, SimulationError, JobTimeout):
            assert issubclass(cls, ReproError)

    def test_config_error_is_value_error(self):
        """Pre-existing call sites catch ValueError; keep them working."""
        assert issubclass(ConfigError, ValueError)
        with pytest.raises(ValueError):
            raise ConfigError("bad knob", field="ways")

    def test_retryability(self):
        assert SimulationError("x").retryable
        assert not TraceError("x").retryable
        assert not ConfigError("x").retryable
        assert not JobTimeout("x").retryable


class TestContext:
    def test_message_carries_context(self):
        exc = TraceError("bad record", trace="mcf_s-1554B",
                         prefetcher="berti")
        s = str(exc)
        assert "bad record" in s
        assert "trace=mcf_s-1554B" in s
        assert "prefetcher=berti" in s

    def test_plain_message_without_context(self):
        assert str(ReproError("boom")) == "boom"

    def test_field_context(self):
        exc = ConfigError("ways must be >= 1", field="ways")
        assert "field=ways" in str(exc)

    def test_context_dict(self):
        exc = SimulationError("x", trace="t", prefetcher="p")
        assert exc.context() == {
            "trace": "t", "prefetcher": "p", "field": None,
        }


class TestPickling:
    """Exceptions cross process boundaries in pool mode."""

    def test_round_trip_preserves_context(self):
        exc = SimulationError("crashed", trace="lbm_s-2676B",
                              prefetcher="mlop")
        back = pickle.loads(pickle.dumps(exc))
        assert isinstance(back, SimulationError)
        assert back.trace == "lbm_s-2676B"
        assert back.prefetcher == "mlop"
        assert str(back) == str(exc)

    def test_timeout_round_trip_preserves_budget(self):
        exc = JobTimeout("too slow", trace="t", timeout=30.0)
        back = pickle.loads(pickle.dumps(exc))
        assert isinstance(back, JobTimeout)
        assert back.timeout == 30.0
        assert back.trace == "t"


class TestClassification:
    def test_taxonomy(self):
        assert classify_error(JobTimeout("x")) == "timeout"
        assert classify_error(TraceError("x")) == "trace"
        assert classify_error(ConfigError("x")) == "config"
        assert classify_error(SimulationError("x")) == "crash"
        assert classify_error(RuntimeError("x")) == "crash"
