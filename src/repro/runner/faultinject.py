"""Deterministic fault injection for the simulator.

The resilient runner must be *provably* resilient, so this module can
perturb a job in every way the error taxonomy classifies:

* ``crash``      — the L1D prefetcher's ``on_access`` raises after N calls
                   (→ :class:`~repro.errors.SimulationError`, kind "crash").
* ``hang``       — the worker sleeps past any reasonable timeout
                   (→ :class:`~repro.errors.JobTimeout`, kind "timeout").
* ``corrupt``    — every N-th trace record gets a negative address, which
                   :meth:`Trace.validate` rejects (→ ``TraceError``).
* ``mshr_full``  — MSHR occupancy queries report "full" every N-th call,
                   exercising the prefetch-drop and demand-stall paths.
* ``pq_full``    — the prefetch queue rejects every N-th push, exercising
                   ``dropped_queue_full``.
* ``flaky``      — the job crashes on its first ``fail_attempts`` attempts
                   and then succeeds (exercises retry with backoff).
* ``balloon``    — the worker allocates ``balloon_mb`` of resident memory
                   and then sleeps; the supervisor's per-worker RSS guard
                   must preempt it (→ :class:`~repro.errors.ResourceError`,
                   kind "resource").

Host-level faults (a journal that reports ``ENOSPC`` on chosen appends,
a journal that SIGKILLs its own process mid-append, a monotonic clock
that jumps forward, scripted ``/proc`` readers) live one layer up in the
chaos harness, :mod:`repro.runner.chaos`, which injects them around a
whole campaign and asserts the campaign invariants afterwards.

All faults are deterministic (counter-based, no randomness), so an
injected run is exactly reproducible — and the *surviving* jobs of a
faulted campaign are bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.memory.hierarchy import Hierarchy, _FIFOQueue
from repro.memory.mshr import MSHR
from repro.workloads.trace import Trace

FAULT_KINDS = ("crash", "hang", "corrupt", "mshr_full", "pq_full", "flaky",
               "balloon")


@dataclass(frozen=True)
class FaultSpec:
    """A picklable description of one injected fault.

    ``period`` means: for ``crash``, crash on the N-th prefetcher
    invocation; for ``corrupt``, corrupt every N-th record; for
    ``mshr_full``/``pq_full``, fail every N-th allocation query.
    ``balloon_mb`` is the resident allocation of a ``balloon`` fault
    (which then sleeps ``hang_seconds``, waiting to be preempted).
    """

    kind: str
    period: int = 3
    hang_seconds: float = 3600.0
    fail_attempts: int = 1
    balloon_mb: int = 96

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}",
                field="kind",
            )
        if self.period < 1:
            raise ConfigError(
                f"fault period must be >= 1, got {self.period}",
                field="period",
            )
        if self.balloon_mb < 1:
            raise ConfigError(
                f"balloon_mb must be >= 1, got {self.balloon_mb}",
                field="balloon_mb",
            )


class InjectedCrash(RuntimeError):
    """The marker exception the ``crash`` fault raises."""


class CrashingPrefetcher:
    """Wraps a prefetcher; ``on_access`` raises on the N-th invocation.

    Everything else delegates to the wrapped prefetcher, so the crash
    happens mid-simulation with realistic state behind it.
    """

    def __init__(self, inner, crash_on: int = 100) -> None:
        self._inner = inner
        self._crash_on = crash_on
        self._calls = 0
        self.name = inner.name
        self.level = inner.level

    def on_access(self, info):
        self._calls += 1
        if self._calls >= self._crash_on:
            raise InjectedCrash(
                f"injected prefetcher crash on access #{self._calls}"
            )
        return self._inner.on_access(info)

    def __getattr__(self, item):
        return getattr(self._inner, item)


class FaultyMSHR(MSHR):
    """An MSHR whose capacity queries report "full" every N-th call.

    ``allocate`` itself only fails on *real* fullness, so the injected
    refusals exercise the graceful paths (prefetch drops, demand stalls)
    without corrupting the simulation.
    """

    def __init__(self, size: int, period: int) -> None:
        super().__init__(size)
        self.period = period
        self._queries = 0
        self._suspended = False
        self.injected_failures = 0

    def _inject(self) -> bool:
        if self._suspended:
            return False
        self._queries += 1
        if self._queries % self.period == 0:
            self.injected_failures += 1
            return True
        return False

    def occupancy(self, now: int) -> int:
        if self._inject():
            return self.size
        return super().occupancy(now)

    def can_allocate(self, now: int) -> bool:
        if self._inject():
            return False
        # Suspend injection for the nested occupancy() call so one
        # capacity check counts as one query, not two.
        self._suspended = True
        try:
            return super().can_allocate(now)
        finally:
            self._suspended = False

    def allocate(self, *args, **kwargs):
        self._suspended = True
        try:
            return super().allocate(*args, **kwargs)
        finally:
            self._suspended = False


class FaultyPQ(_FIFOQueue):
    """A prefetch queue that rejects every N-th push as if full."""

    def __init__(self, size: int, period: int, rate: float = 1.0) -> None:
        super().__init__(size, rate=rate)
        self.period = period
        self._pushes = 0
        self.injected_failures = 0

    def push(self, now: float) -> Optional[int]:
        self._pushes += 1
        if self._pushes % self.period == 0:
            self.injected_failures += 1
            return None
        return super().push(now)


def corrupt_trace(trace: Trace, period: int = 97) -> Trace:
    """A copy of ``trace`` with every ``period``-th record's address
    negated — the canonical "bit-flipped trace file" failure."""
    records = list(trace.records)
    for i in range(0, len(records), max(1, period)):
        ip, vaddr, is_write, gap, dep = records[i]
        records[i] = (ip, -abs(vaddr) - 1, is_write, gap, dep)
    return Trace(
        name=trace.name,
        records=records,
        suite=trace.suite,
        description=trace.description,
    )


def hierarchy_fault_hook(spec: FaultSpec) -> Optional[Callable[[Hierarchy], None]]:
    """The ``post_build`` hook implementing MSHR/PQ allocation faults."""
    if spec.kind == "mshr_full":
        def hook(h: Hierarchy) -> None:
            h.l1d_mshr = FaultyMSHR(h.l1d_mshr.size, spec.period)
            h.l2_mshr = FaultyMSHR(h.l2_mshr.size, spec.period)
        return hook
    if spec.kind == "pq_full":
        def hook(h: Hierarchy) -> None:
            h.pq = FaultyPQ(h.pq.size, spec.period, rate=h.pq.rate)
        return hook
    return None
