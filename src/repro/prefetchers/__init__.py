"""Baseline prefetchers the paper evaluates against Berti."""

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    FILL_LLC,
    AccessInfo,
    FillInfo,
    NoPrefetcher,
    Prefetcher,
    PrefetchRequest,
)

__all__ = [
    "FILL_L1",
    "FILL_L2",
    "FILL_LLC",
    "AccessInfo",
    "FillInfo",
    "NoPrefetcher",
    "Prefetcher",
    "PrefetchRequest",
]
