"""Dynamic-energy model of the memory hierarchy (paper §IV-A).

The paper obtains per-access read/write energies for each cache's tag and
data arrays from CACTI-P at 22 nm, and DRAM energy from the Micron power
calculator, then multiplies by simulated event counts.  We follow the
same methodology with representative 22 nm-class constants; because the
paper reports energy *normalised to no prefetching* (Figures 1b and 15),
only the relative magnitudes of the constants matter, and those follow
well-known array-size scaling.

Events charged per component:

* L1D — demand accesses (tag+data read), fills (data write), prefetch
  probes cost a tag read;
* L2/LLC — demand accesses, fills, writebacks;
* DRAM — reads/writes (activate amortised via the row hit/miss counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.simulator.stats import SimResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energy in picojoules (22 nm class)."""

    l1d_read_pj: float = 15.0
    l1d_write_pj: float = 18.0
    l1d_tag_probe_pj: float = 3.0
    l2_read_pj: float = 45.0
    l2_write_pj: float = 55.0
    llc_read_pj: float = 110.0
    llc_write_pj: float = 130.0
    dram_row_activate_pj: float = 900.0
    dram_column_access_pj: float = 450.0
    dram_write_pj: float = 1300.0


@dataclass
class EnergyBreakdown:
    """Dynamic energy per level, in nanojoules."""

    l1d_nj: float = 0.0
    l2_nj: float = 0.0
    llc_nj: float = 0.0
    dram_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return self.l1d_nj + self.l2_nj + self.llc_nj + self.dram_nj

    def as_dict(self) -> Dict[str, float]:
        return {
            "l1d": self.l1d_nj,
            "l2": self.l2_nj,
            "llc": self.llc_nj,
            "dram": self.dram_nj,
            "total": self.total_nj,
        }


class EnergyModel:
    """Computes hierarchy dynamic energy from a :class:`SimResult`."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def evaluate(self, result: SimResult) -> EnergyBreakdown:
        p = self.params
        pf_probes = result.pf_l1d.issued + result.pf_l1d.dropped_duplicate

        l1d = (
            result.l1d_demand_accesses * p.l1d_read_pj
            + (result.l1d_demand_misses + result.l1d_prefetch_fills)
            * p.l1d_write_pj
            + pf_probes * p.l1d_tag_probe_pj
        )
        l2 = (
            result.traffic_l1d_l2 * p.l2_read_pj
            + (result.l2_demand_misses + result.l2_prefetch_fills)
            * p.l2_write_pj
            + result.l1d_writebacks * p.l2_write_pj
        )
        llc = (
            result.traffic_l2_llc * p.llc_read_pj
            + (result.llc_demand_misses + result.llc_prefetch_fills)
            * p.llc_write_pj
            + result.l2_writebacks * p.llc_write_pj
        )
        dram = (
            result.dram_row_misses * p.dram_row_activate_pj
            + result.dram_reads * p.dram_column_access_pj
            + result.dram_writes * p.dram_write_pj
        )
        return EnergyBreakdown(
            l1d_nj=l1d / 1000.0,
            l2_nj=l2 / 1000.0,
            llc_nj=llc / 1000.0,
            dram_nj=dram / 1000.0,
        )

    def normalised(self, result: SimResult, baseline: SimResult) -> float:
        """Total dynamic energy relative to a no-prefetching baseline —
        the quantity Figures 1(b) and 15 plot."""
        base = self.evaluate(baseline).total_nj
        if base == 0:
            return 0.0
        return self.evaluate(result).total_nj / base
