"""Records/sec microbenchmarks for the simulation core.

The suite times :func:`repro.simulator.engine.simulate` end-to-end on a
small matrix of (trace × L1D prefetcher) cases spanning the three trace
families the paper evaluates — synthetic streams, GAP graph kernels, and
SPEC-like traces — and reports **records per second**, the unit that
directly bounds how many configurations a sweep can cover.

Cross-host comparability.  Raw records/sec moves with the host CPU, so
every report also carries a *host calibration* figure: the throughput of
a fixed pure-Python kernel measured at report time.  Regression checks
compare the *normalized* throughput (records/sec ÷ calibration) when
both sides carry a calibration, which makes the committed CI baseline
meaningful on runner hardware that differs from the machine that
recorded it.  Tolerances stay deliberately loose (30 % by default):
this gate exists to catch "accidentally made the engine 2× slower",
not 2 % jitter.

``benchmarks/perf/bench_simcore.py`` is the command-line entry point;
it writes ``BENCH_simcore.json`` so the throughput trajectory is
tracked across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Report schema version, bumped on incompatible layout changes.
SCHEMA = "bench-simcore/v1"


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchCase:
    """One timed configuration."""

    name: str           #: stable key, used by baselines ("mcf/none")
    trace: str          #: catalog trace spec, or "synth:bench"
    l1d: str            #: L1D prefetcher registry name
    scale: float = 1.0  #: trace scale passed to the catalog
    cores: int = 1      #: >1 runs the trace on every core of a shared-LLC mix
    engine: str = "classic"  #: simulator inner loop ("classic"/"batched")
    chunk_size: int = 0      #: batched-engine chunk length (0 = default)


@dataclass
class BenchResult:
    """Timing for one case (best-of-``repeats`` wall clock)."""

    case: BenchCase
    records: int
    repeats: int
    best_seconds: float
    mean_seconds: float
    records_per_sec: float
    #: records/sec ÷ host-calibration Mops — the cross-host comparable unit.
    normalized: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.case.name,
            "trace": self.case.trace,
            "l1d": self.case.l1d,
            "scale": self.case.scale,
            "cores": self.case.cores,
            "engine": self.case.engine,
            "chunk_size": self.case.chunk_size,
            "records": self.records,
            "repeats": self.repeats,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "records_per_sec": self.records_per_sec,
            "normalized": self.normalized,
        }


def default_cases(scale: float = 1.0) -> List[BenchCase]:
    """The tier-1 benchmark matrix: trace families × prefetchers × engines.

    The ``none`` rows time the demand path alone; the ``berti`` rows add
    the full train/predict/issue machinery.  Both matter: sweeps run
    mostly prefetcher configs, but the demand path is the floor every
    config pays.  Every single-core case gets an ``@batched`` twin timing
    the fused columnar loop (:mod:`repro.simulator.batched`); the
    multicore cases have no twins because the batched engine demotes to
    the per-access path there.  The ``@native`` twins time the C span
    kernel (:mod:`repro.native`); on hosts without a compiler they run
    the batched fallback and report comparable numbers rather than
    failing.
    """
    matrix = [
        ("synth", "synth:bench"),
        ("bfs-kron", "bfs-kron"),      # GAP graph kernel
        ("mcf", "mcf_s-1554B"),        # SPEC-like, pointer-heavy
        ("lbm", "lbm_s-2676B"),        # SPEC-like, streaming
    ]
    cases: List[BenchCase] = []
    for short, spec in matrix:
        for pf in ("none", "berti"):
            cases.append(
                BenchCase(name=f"{short}/{pf}", trace=spec, l1d=pf, scale=scale)
            )
            cases.append(
                BenchCase(name=f"{short}/{pf}@batched", trace=spec, l1d=pf,
                          scale=scale, engine="batched")
            )
            cases.append(
                BenchCase(name=f"{short}/{pf}@native", trace=spec, l1d=pf,
                          scale=scale, engine="native")
            )
    # Shared-LLC/DRAM replay loop with the full Berti machinery on both
    # cores: the configuration parallel campaigns actually sweep, and
    # the one the mmap trace store exists to feed.
    cases.append(BenchCase(name="mc2-synth/berti", trace="synth:bench",
                           l1d="berti", scale=scale, cores=2))
    cases.append(BenchCase(name="mc2-bfs/berti", trace="bfs-kron",
                           l1d="berti", scale=scale, cores=2))
    return cases


def build_bench_trace(spec: str, scale: float):
    """Resolve a case's trace; ``synth:bench`` is built inline, RNG-free.

    The synthetic mix mirrors the golden trace's construction (constant
    stride, repeating delta pattern, write-heavy stream) but sized by
    ``scale`` so ``--quick`` stays quick.
    """
    if spec != "synth:bench":
        from repro.workloads.catalog import resolve_trace

        return resolve_trace(spec, scale)

    from repro.workloads.synthetic import pattern_stream, strided_stream
    from repro.workloads.trace import Trace, interleave

    n = max(200, int(2000 * scale))
    a = Trace("a")
    a.extend(strided_stream(0x100, 0x10000, 1, n, gap=6))
    b = Trace("b")
    b.extend(pattern_stream(0x200, 0x400000, [1, 3, 1, 3], n, gap=4))
    c = Trace("c")
    c.extend(strided_stream(0x300, 0x800000, 2, n, gap=8, is_write=True))
    out = interleave([a, b, c], "bench_synth", chunk=2)
    out.suite = "synthetic"
    return out


# ----------------------------------------------------------------------
# Host calibration
# ----------------------------------------------------------------------


def _calibration_kernel(n: int) -> int:
    """A fixed interpreter workload: dict probes + int arithmetic.

    Deliberately shaped like the simulator's hot path (dict presence
    checks, attribute-free integer math) so its throughput tracks the
    interpreter speed the simulator actually experiences.
    """
    table: Dict[int, int] = {}
    get = table.get
    acc = 0
    for i in range(n):
        k = (i * 2654435761) & 0xFFFF
        v = get(k)
        if v is None:
            table[k] = i
        else:
            acc += v & 7
        if len(table) > 8192:
            table.clear()
    return acc


def calibrate_host(target_seconds: float = 0.2) -> float:
    """Millions of calibration-kernel iterations per second on this host."""
    n = 100_000
    # Grow n until the kernel runs long enough to time reliably.
    while True:
        t0 = time.perf_counter()
        _calibration_kernel(n)
        dt = time.perf_counter() - t0
        if dt >= target_seconds or n >= 10_000_000:
            return (n / dt) / 1e6
        n *= 4


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def _time_once(case: BenchCase, trace) -> float:
    """One timed simulation of ``case`` (fresh prefetchers each call)."""
    from repro.prefetchers.registry import make_prefetcher

    if case.cores <= 1:
        from repro.simulator.engine import simulate

        pf = make_prefetcher(case.l1d)
        t0 = time.perf_counter()
        simulate(trace, l1d_prefetcher=pf, engine=case.engine,
                 chunk_size=case.chunk_size)
        return time.perf_counter() - t0
    from repro.simulator.multicore import simulate_multicore

    l1ds = [make_prefetcher(case.l1d) for _ in range(case.cores)]
    l2s = [make_prefetcher("none") for _ in range(case.cores)]
    t0 = time.perf_counter()
    simulate_multicore([trace] * case.cores, l1ds, l2s,
                       engine=case.engine, chunk_size=case.chunk_size)
    return time.perf_counter() - t0


def run_case(
    case: BenchCase,
    repeats: int = 3,
    calibration_mops: Optional[float] = None,
) -> BenchResult:
    """Time one case, best-of-``repeats`` (fresh prefetcher per repeat)."""
    trace = build_bench_trace(case.trace, case.scale)
    times: List[float] = []
    for _ in range(max(1, repeats)):
        times.append(_time_once(case, trace))
    best = min(times)
    records = len(trace) * max(1, case.cores)
    rps = records / best if best > 0 else 0.0
    return BenchResult(
        case=case,
        records=records,
        repeats=len(times),
        best_seconds=best,
        mean_seconds=sum(times) / len(times),
        records_per_sec=rps,
        normalized=(rps / calibration_mops) if calibration_mops else None,
    )


def run_suite(
    cases: List[BenchCase],
    repeats: int = 3,
    calibration_mops: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    interleave: bool = True,
) -> List[BenchResult]:
    """Run every case; ``progress`` gets one line per finished case.

    With ``interleave`` (the default) the repeats are scheduled
    round-robin across cases — every case gets one timing per round —
    instead of back-to-back.  On a machine with background load,
    back-to-back repeats of one case all land in the same load window
    and best-of-N removes none of the bias; spreading a case's repeats
    across the whole suite duration decorrelates them from load bursts.
    """
    if not interleave:
        results = []
        for case in cases:
            res = run_case(
                case, repeats=repeats, calibration_mops=calibration_mops
            )
            results.append(res)
            if progress is not None:
                progress(
                    f"{case.name:<16} {res.records_per_sec:>10.0f} rec/s "
                    f"({res.records} recs, best of {res.repeats})"
                )
        return results

    traces = [build_bench_trace(c.trace, c.scale) for c in cases]
    times: List[List[float]] = [[] for _ in cases]
    for _round in range(max(1, repeats)):
        for i, case in enumerate(cases):
            times[i].append(_time_once(case, traces[i]))
    results = []
    for i, case in enumerate(cases):
        best = min(times[i])
        records = len(traces[i]) * max(1, case.cores)
        rps = records / best if best > 0 else 0.0
        res = BenchResult(
            case=case,
            records=records,
            repeats=len(times[i]),
            best_seconds=best,
            mean_seconds=sum(times[i]) / len(times[i]),
            records_per_sec=rps,
            normalized=(rps / calibration_mops) if calibration_mops else None,
        )
        results.append(res)
        if progress is not None:
            progress(
                f"{case.name:<16} {res.records_per_sec:>10.0f} rec/s "
                f"({res.records} recs, best of {res.repeats} interleaved)"
            )
    return results


# ----------------------------------------------------------------------
# Reports and regression gate
# ----------------------------------------------------------------------


def write_report(
    path: str,
    results: List[BenchResult],
    calibration_mops: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write ``BENCH_simcore.json``; returns the report dict."""
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "calibration_mops": calibration_mops,
        },
        "cases": [r.to_dict() for r in results],
    }
    if extra:
        report.update(extra)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def _throughput_by_name(
    report: Dict[str, Any], normalized: bool
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for case in report.get("cases", []):
        value = case.get("normalized") if normalized else None
        if value is None:
            value = case.get("records_per_sec")
        if value:
            out[case["name"]] = value
    return out


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.30,
) -> List[str]:
    """Regression messages, empty when the gate passes.

    A case regresses when its throughput falls more than ``tolerance``
    below the baseline's.  Normalized (calibration-scaled) figures are
    compared when both reports carry a calibration — that is what makes
    the committed baseline portable across CI hosts; otherwise raw
    records/sec is used.  Cases present on only one side are reported
    as notes but do not fail the gate (the matrix may legitimately
    grow), except baseline cases that vanished, which do fail: silently
    dropping a gated case would defeat the gate.
    """
    both_calibrated = bool(
        current.get("host", {}).get("calibration_mops")
        and baseline.get("host", {}).get("calibration_mops")
    )
    cur = _throughput_by_name(current, normalized=both_calibrated)
    base = _throughput_by_name(baseline, normalized=both_calibrated)
    unit = "normalized rec/s/Mop" if both_calibrated else "rec/s"
    problems: List[str] = []
    for name, base_val in sorted(base.items()):
        cur_val = cur.get(name)
        if cur_val is None:
            problems.append(
                f"{name}: present in baseline but missing from current run"
            )
            continue
        floor = base_val * (1.0 - tolerance)
        if cur_val < floor:
            drop = 1.0 - cur_val / base_val
            problems.append(
                f"{name}: {cur_val:.1f} {unit} is {drop:.0%} below baseline "
                f"{base_val:.1f} (tolerance {tolerance:.0%})"
            )
    return problems
