#!/usr/bin/env python3
"""Compare every L1D prefetcher across a mini evaluation suite.

A reduced version of the paper's Figure 8/10 methodology: run a few
SPEC-like and GAP-like traces under each L1D prefetcher, then report the
geometric-mean speedup over IP-stride, the average accuracy, and the
hardware budget — the speedup-vs-storage trade-off of Figure 7.

Run:  python examples/compare_prefetchers.py [scale]
"""

import sys

from repro.analysis.metrics import average_accuracy, geomean_speedup
from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher, storage_kb
from repro.simulator.engine import simulate
from repro.workloads.gap import gap_trace
from repro.workloads.spec_like import lbm_2676, mcf_s_1554, xalancbmk_like

PREFETCHERS = ["ip_stride", "bop", "mlop", "ipcp", "berti"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    traces = [
        mcf_s_1554(scale),
        lbm_2676(scale),
        xalancbmk_like(scale),
        gap_trace("bc", "kron", scale),
        gap_trace("sssp", "urand", scale),
    ]

    per_trace = {}
    for trace in traces:
        print(f"simulating {trace.name} ({len(trace)} accesses)...")
        per_trace[trace.name] = {
            name: simulate(trace, l1d_prefetcher=make_prefetcher(name))
            for name in PREFETCHERS
        }

    speeds = geomean_speedup(per_trace, baseline_name="ip_stride")
    rows = []
    for name in PREFETCHERS:
        results = [per_trace[t][name] for t in per_trace]
        rows.append([
            name,
            speeds[name],
            average_accuracy(results),
            round(storage_kb(name), 2),
        ])
    print()
    print(format_table(
        ["prefetcher", "geomean speedup", "avg accuracy", "storage KB"],
        rows,
        title="L1D prefetcher comparison (vs IP-stride)",
    ))


if __name__ == "__main__":
    main()
