"""Multi-core simulation (paper §IV-I).

Four cores, each with private L1D/L2 and its own MMU/address space,
sharing one LLC and one DRAM channel (Table II: one channel per four
cores, 2 MB LLC per core).  Each core replays its trace until every core
has executed its instruction budget, as in the paper's methodology.

Cores are interleaved at a fixed record granularity and share the DRAM's
bank/bus state, so cross-core bandwidth contention — the effect the paper
credits for Berti's larger multi-core wins — emerges naturally.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cpu.core_model import CoreModel
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.hierarchy import Hierarchy
from repro.prefetchers.base import Prefetcher
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import (
    _Snapshot,
    _collect,
    build_hierarchy,
    validate_engine,
)
from repro.simulator.stats import SimResult
from repro.workloads.trace import Trace


def simulate_multicore(
    traces: Sequence[Trace],
    l1d_prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    l2_prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    prewarm_tlb: bool = True,
    post_build: Optional[Callable[[Hierarchy], None]] = None,
    engine: str = "classic",
    chunk_size: int = 0,
) -> List[SimResult]:
    """Run one trace per core on a shared-LLC/DRAM system.

    Returns one :class:`SimResult` per core, measured over each core's
    post-warmup records (a finished core keeps replaying its trace so
    contention persists until all cores complete, per the paper).
    ``post_build`` is invoked once per core hierarchy right after it is
    built (same contract as :func:`~repro.simulator.engine.simulate`);
    hooks touching the shared LLC/DRAM must be idempotent, since those
    objects appear in every core's hierarchy.

    ``engine``/``chunk_size`` are accepted for API symmetry with
    ``simulate`` but the fused columnar loop never engages here: cores
    interleave every ``CHUNK`` records, each core's warmup reset and
    end-of-trace collection fire mid-interleave, and the LLC/DRAM stats
    are shared — all of which break the fused loop's one-flush-per-span
    delta accounting.  ``engine="batched"`` therefore runs the same
    per-access loop as ``"classic"`` (the single-core demotion rule,
    applied unconditionally; see :mod:`repro.simulator.batched`).
    """
    config = config or default_config()
    validate_engine(engine, chunk_size, traces[0].name if traces else "")
    num_cores = len(traces)
    config_mc = config
    if config.num_cores != num_cores:
        from dataclasses import replace
        config_mc = replace(config, num_cores=num_cores)

    llc = Cache(
        "llc",
        config_mc.scaled_llc_size(),
        config_mc.llc.ways,
        config_mc.llc.latency,
        replacement=config_mc.llc.replacement,
    )
    dram = DRAM(config_mc.dram)

    l1d_prefetchers = list(l1d_prefetchers or [None] * num_cores)
    l2_prefetchers = list(l2_prefetchers or [None] * num_cores)

    hierarchies = []
    cores = []
    for cid in range(num_cores):
        h = build_hierarchy(
            config_mc,
            l1d_prefetchers[cid],
            l2_prefetchers[cid],
            dram=dram,
            llc=llc,
            asid=cid + 1,
        )
        if post_build is not None:
            post_build(h)
        if prewarm_tlb:
            h.mmu.prewarm(traces[cid].line_addresses())
        hierarchies.append(h)
        cores.append(CoreModel(config_mc.core))

    # Materialise row tuples once: the replay loop below indexes records
    # repeatedly (finished cores keep replaying), so per-index tuple
    # construction from the columnar store would be paid many times.
    records = [t.records[:] for t in traces]
    lengths = [len(r) for r in records]
    warmup_end = [int(n * warmup_fraction) for n in lengths]
    position = [0] * num_cores
    consumed = [0] * num_cores          # records consumed incl. replay
    starts: List[Optional[_Snapshot]] = [None] * num_cores
    finished = [False] * num_cores
    end_stats: List[Optional[SimResult]] = [None] * num_cores

    CHUNK = 8
    while not all(finished):
        for cid in range(num_cores):
            if finished[cid] and all(
                f or starts[c] is not None for c, f in enumerate(finished)
            ):
                pass  # finished cores keep replaying for contention
            core = cores[cid]
            h = hierarchies[cid]
            recs = records[cid]
            n = lengths[cid]
            for _ in range(CHUNK):
                idx = position[cid]
                if consumed[cid] == warmup_end[cid]:
                    h.reset_stats()
                    snap_i, snap_c = core.snapshot()
                    starts[cid] = _Snapshot(snap_i, snap_c)
                ip, vaddr, is_write, gap, dep = recs[idx]
                if gap:
                    core.advance_nonmem(gap)
                core.issue_memory(
                    h.demand_access, ip, vaddr, is_write=is_write, dep=dep
                )
                consumed[cid] += 1
                position[cid] = (idx + 1) % n
                if not finished[cid] and consumed[cid] >= n:
                    finished[cid] = True
                    end_stats[cid] = _collect(
                        traces[cid], h, core, starts[cid] or _Snapshot(0, 0.0)
                    )
    results = []
    for cid in range(num_cores):
        res = end_stats[cid]
        if res is None:  # degenerate tiny trace
            res = _collect(
                traces[cid], hierarchies[cid], cores[cid],
                starts[cid] or _Snapshot(0, 0.0),
            )
        results.append(res)
    return results


def weighted_speedup(
    results: Sequence[SimResult], baselines: Sequence[SimResult]
) -> float:
    """Mean per-core speedup against per-core baseline runs."""
    ratios = [
        r.ipc / b.ipc for r, b in zip(results, baselines) if b.ipc > 0
    ]
    return sum(ratios) / len(ratios) if ratios else 0.0
