"""Record golden SimResult snapshots for the engine-refactor guard.

Run from the repo root::

    PYTHONPATH=src python tests/golden/record_golden.py

Writes ``tests/golden/simcore_golden.json``: the full ``SimResult``
dict for a small matrix of (trace × L1D prefetcher) runs.  The golden
file was recorded with the pre-refactor (PR 1) engine; the test
``tests/test_golden_stats.py`` asserts the current engine reproduces
every counter bit-for-bit, so hot-path optimisations cannot silently
change simulation semantics.

Regenerate only when a PR *intentionally* changes simulation results,
and say so in the PR description.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "simcore_golden.json"

#: (trace spec, scale); "synth:golden" is built inline below so the
#: golden run does not depend on any suite generator's RNG stream.
GOLDEN_TRACES = [
    ("synth:golden", 0.0),
    ("bfs-kron", 0.1),
    ("mcf_s-1554B", 0.1),
]
#: "berti_page" rides the same kernelized history/delta tables as
#: "berti" but keys them on the page, pinning the kernel path under a
#: second training-key distribution (denser per-entry delta sets).
GOLDEN_PREFETCHERS = ["none", "berti", "berti_page"]


def build_golden_trace(spec: str, scale: float):
    """Resolve one golden trace spec deterministically."""
    from repro.workloads.catalog import resolve_trace
    from repro.workloads.synthetic import pattern_stream, strided_stream
    from repro.workloads.trace import Trace, interleave

    if spec != "synth:golden":
        return resolve_trace(spec, scale)
    # A fixed, RNG-free mix: one constant stride, one repeating stride
    # pattern, one write-heavy stream — enough to exercise hits, misses,
    # writebacks, and Berti's delta learning.
    a = Trace("a")
    a.extend(strided_stream(0x100, 0x10000, 1, 1500, gap=6))
    b = Trace("b")
    b.extend(pattern_stream(0x200, 0x400000, [1, 3, 1, 3], 1500, gap=4))
    c = Trace("c")
    c.extend(strided_stream(0x300, 0x800000, 2, 1500, gap=8, is_write=True))
    out = interleave([a, b, c], "golden_synth", chunk=2)
    out.suite = "synthetic"
    return out


def run_golden_matrix(engine: str = "optimized"):
    """All golden runs as {key: SimResult-dict}.

    ``engine`` selects which engine executes the matrix: the optimised
    hot-path engine (what the test replays), the batched columnar engine
    (``"batched"``), or the pure-reference virtual-dispatch engine (what
    ``main()`` records with).  All are required to be bit-identical, so
    the comparison in ``tests/test_golden_stats.py`` is differential by
    construction: reference-recorded numbers replayed on the optimised
    and batched engines against the same golden JSON.
    """
    from dataclasses import replace
    from repro.prefetchers.registry import make_prefetcher
    from repro.sanitizer.reference import to_reference
    from repro.simulator.config import CacheConfig, default_config
    from repro.simulator.engine import simulate
    from repro.simulator.multicore import simulate_multicore

    post_build = to_reference if engine == "reference" else None
    sim_engine = "batched" if engine == "batched" else "classic"
    results = {}
    for spec, scale in GOLDEN_TRACES:
        trace = build_golden_trace(spec, scale)
        for pf in GOLDEN_PREFETCHERS:
            res = simulate(trace, l1d_prefetcher=make_prefetcher(pf),
                           post_build=post_build, engine=sim_engine)
            results[f"{spec}@{scale}#{pf}"] = res.to_dict()

    # A non-default replacement config: SRRIP at the L1D exercises the
    # cache's RRPV fast paths under Berti (the default matrix only sees
    # LRU there).
    config = default_config()
    config = replace(
        config, l1d=replace(config.l1d, replacement="srrip")
    )
    trace = build_golden_trace("synth:golden", 0.0)
    res = simulate(trace, l1d_prefetcher=make_prefetcher("berti"),
                   config=config, post_build=post_build, engine=sim_engine)
    results["synth:golden@0.0#berti+l1d_srrip"] = res.to_dict()

    # One multicore mix: shared LLC/DRAM contention between a Berti core
    # and a prefetcher-less core.  (engine="batched" demotes to the
    # per-access loop here — passed through anyway so the parametrized
    # golden replay also pins that the demotion changes nothing.)
    mix = [build_golden_trace("bfs-kron", 0.1),
           build_golden_trace("mcf_s-1554B", 0.1)]
    mc = simulate_multicore(
        mix,
        [make_prefetcher("berti"), make_prefetcher("none")],
        post_build=post_build,
        engine=sim_engine,
    )
    results["mc:bfs-kron+mcf_s-1554B@0.1#berti,none"] = {
        f"core{i}": r.to_dict() for i, r in enumerate(mc)
    }
    return results


def main() -> int:
    results = run_golden_matrix(engine="reference")
    GOLDEN_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"wrote {GOLDEN_PATH} ({len(results)} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
