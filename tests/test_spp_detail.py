"""Deeper unit tests for SPP internals (signatures, counters, lookahead
confidence) and the PPF perceptron."""

import pytest

from repro.prefetchers.base import FILL_L2, FILL_LLC, AccessInfo
from repro.prefetchers.spp import SPPPrefetcher


def acc(line, ip=0x1):
    return AccessInfo(ip=ip, line=line, hit=False, prefetch_hit=False, now=0)


class TestSignatures:
    def test_signature_update_deterministic(self):
        pf = SPPPrefetcher()
        assert pf._sig_update(0, 2) == pf._sig_update(0, 2)

    def test_signature_depends_on_history(self):
        pf = SPPPrefetcher()
        a = pf._sig_update(pf._sig_update(0, 1), 2)
        b = pf._sig_update(pf._sig_update(0, 2), 1)
        assert a != b

    def test_signature_bounded(self):
        pf = SPPPrefetcher()
        sig = 0
        for d in range(-60, 60):
            sig = pf._sig_update(sig, d)
            assert 0 <= sig < (1 << pf.SIG_BITS)


class TestPatternTable:
    def test_counter_saturation_halves(self):
        pf = SPPPrefetcher(use_ppf=False)
        # Drive one signature far past the counter max.
        for page in range(40):
            line = page * 64
            for __ in range(30):
                pf.on_access(acc(line))
                line += 1
        for entry in pf._pt:
            assert entry.c_sig <= pf.COUNTER_MAX
            for count in entry.deltas.values():
                assert count <= pf.COUNTER_MAX

    def test_delta_slots_bounded(self):
        pf = SPPPrefetcher(use_ppf=False)
        import random
        rng = random.Random(5)
        for page in range(30):
            line = page * 64
            for __ in range(40):
                pf.on_access(acc(line))
                line = page * 64 + rng.randrange(64)
        for entry in pf._pt:
            assert len(entry.deltas) <= pf.MAX_DELTAS_PER_SIG


class TestFillLevels:
    def test_low_confidence_targets_llc(self):
        pf = SPPPrefetcher(use_ppf=False)
        # Mix two deltas 60/40 so confidences land between thresholds.
        for page in range(10, 40):
            line = page * 64
            for i in range(20):
                pf.on_access(acc(line))
                line += 2 if i % 5 else 4
        pf.on_access(acc(100 * 64))
        reqs = pf.on_access(acc(100 * 64 + 2))
        levels = {r.fill_level for r in reqs}
        assert levels <= {FILL_L2, FILL_LLC}

    def test_confidence_attached_to_requests(self):
        pf = SPPPrefetcher(use_ppf=False)
        for page in range(10, 40):
            line = page * 64
            for __ in range(20):
                pf.on_access(acc(line))
                line += 2
        pf.on_access(acc(100 * 64))
        reqs = pf.on_access(acc(100 * 64 + 2))
        assert reqs and all(0 < r.confidence <= 1.0 for r in reqs)


class TestPPF:
    def test_weights_clamped(self):
        pf = SPPPrefetcher(use_ppf=True, ppf_weight_max=3)
        f = pf._features(1, 2, 3, 0)
        for __ in range(20):
            pf._inflight_features[99] = f
            pf._train_ppf(99, useful=True)
        assert pf._w_sig[f[0]] <= 3

    def test_training_requires_inflight_record(self):
        pf = SPPPrefetcher(use_ppf=True)
        before = list(pf._w_delta)
        pf._train_ppf(12345, useful=True)  # unknown line: no-op
        assert pf._w_delta == before

    def test_positive_feedback_raises_score(self):
        pf = SPPPrefetcher(use_ppf=True)
        f = pf._features(7, 3, 9, 1)
        pf._inflight_features[50] = f
        pf._train_ppf(50, useful=True)
        score = (pf._w_sig[f[0]] + pf._w_delta[f[1]]
                 + pf._w_offset[f[2]] + pf._w_depth[f[3]])
        assert score > 0

    def test_spp_without_ppf_never_rejects(self):
        pf = SPPPrefetcher(use_ppf=False)
        assert pf._ppf_accept(1, 2, 3, 0, 99)
        assert pf.ppf_rejections == 0
