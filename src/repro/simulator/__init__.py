"""Simulation engines (single-core and multi-core) and result records."""

from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import build_hierarchy, simulate
from repro.simulator.multicore import simulate_multicore, weighted_speedup
from repro.simulator.stats import PrefetchSummary, SimResult

__all__ = [
    "SystemConfig",
    "default_config",
    "build_hierarchy",
    "simulate",
    "simulate_multicore",
    "weighted_speedup",
    "PrefetchSummary",
    "SimResult",
]
