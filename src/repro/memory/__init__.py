"""Memory-hierarchy substrate: caches, MSHRs, DRAM, and their glue."""

from repro.memory.cache import Cache, CacheLine, CacheStats
from repro.memory.dram import DRAM, DRAMConfig
from repro.memory.hierarchy import Hierarchy, LinkTraffic, PrefetcherStats
from repro.memory.mshr import MSHR, MSHREntry

__all__ = [
    "Cache",
    "CacheLine",
    "CacheStats",
    "DRAM",
    "DRAMConfig",
    "Hierarchy",
    "LinkTraffic",
    "PrefetcherStats",
    "MSHR",
    "MSHREntry",
]
