"""Name-based trace catalog shared by the CLI and the runner workers.

Traces are generated deterministically from a ``(name, scale)`` pair, so
a worker process can rebuild exactly the trace the parent referred to
without shipping the record list across the process boundary.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TraceError
from repro.workloads.cloudsuite_like import GENERATORS as CS_GENERATORS
from repro.workloads.gap import GRAPHS, KERNELS, gap_trace
from repro.workloads.spec_like import GENERATORS as SPEC_GENERATORS
from repro.workloads.trace import Trace


def resolve_trace(name: str, scale: float) -> Trace:
    """Find a trace generator by name across all suites."""
    if name in SPEC_GENERATORS:
        return SPEC_GENERATORS[name](scale)
    if name in CS_GENERATORS:
        return CS_GENERATORS[name](scale)
    if "-" in name:
        kernel, __, graph = name.partition("-")
        if kernel in KERNELS and graph in GRAPHS:
            return gap_trace(kernel, graph, scale)
    raise TraceError(
        f"unknown trace {name!r}; run `python -m repro list` for options",
        trace=name,
    )


def all_trace_names() -> List[str]:
    gap_names = [f"{k}-{g}" for k in KERNELS for g in GRAPHS]
    return list(SPEC_GENERATORS) + gap_names + list(CS_GENERATORS)


def suite_trace_names(suite: str, all_graphs: bool = False) -> List[str]:
    """Trace names belonging to one evaluation suite."""
    suites: Dict[str, List[str]] = {
        "spec17": list(SPEC_GENERATORS),
        "gap": [
            f"{k}-{g}" for k in KERNELS
            for g in (GRAPHS if all_graphs else ["kron", "urand"])
        ],
        "cloudsuite": list(CS_GENERATORS),
    }
    try:
        return suites[suite]
    except KeyError:
        raise TraceError(
            f"unknown suite {suite!r}; choose from {sorted(suites)}",
            trace=suite,
        ) from None
