"""IP-stride prefetcher — the paper's baseline L1D prefetcher.

Table II: "48 KB L1D ... with a 24-entry, fully associative IP-stride
prefetcher [18]" (Intel's smart-memory-access style stride prefetcher).
Each entry tracks, per IP, the last accessed line, the last observed
stride, and a 2-bit confidence counter; after two confirmations it
prefetches ``degree`` lines ahead along the stride.

Every speedup in the evaluation is reported relative to a system with
this prefetcher enabled at the L1D.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import (
    FILL_L1,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class _Entry:
    __slots__ = ("ip", "last_line", "stride", "confidence", "lru")

    def __init__(self, ip: int, line: int, lru: int) -> None:
        self.ip = ip
        self.last_line = line
        self.stride = 0
        self.confidence = 0
        self.lru = lru


class IPStridePrefetcher(Prefetcher):
    """24-entry fully-associative per-IP stride detector."""

    name = "ip_stride"
    level = "l1d"

    CONFIDENCE_MAX = 3
    CONFIDENCE_THRESHOLD = 2

    def __init__(self, entries: int = 24, degree: int = 2) -> None:
        self.entries = entries
        self.degree = degree
        self._table: Dict[int, _Entry] = {}
        self._clock = 0

    def _lookup(self, ip: int, line: int) -> _Entry:
        self._clock += 1
        entry = self._table.get(ip)
        if entry is None:
            if len(self._table) >= self.entries:
                victim_ip = min(self._table, key=lambda k: self._table[k].lru)
                del self._table[victim_ip]
            entry = _Entry(ip, line, self._clock)
            self._table[ip] = entry
        entry.lru = self._clock
        return entry

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        entry = self._lookup(access.ip, access.line)
        stride = access.line - entry.last_line
        requests: List[PrefetchRequest] = []
        if stride != 0:
            if stride == entry.stride:
                if entry.confidence < self.CONFIDENCE_MAX:
                    entry.confidence += 1
            else:
                entry.stride = stride
                entry.confidence = 0
            if entry.confidence >= self.CONFIDENCE_THRESHOLD:
                for k in range(1, self.degree + 1):
                    target = access.line + entry.stride * (self.degree - 1 + k)
                    requests.append(
                        PrefetchRequest(line=target, fill_level=FILL_L1)
                    )
            entry.last_line = access.line
        return requests

    def storage_bits(self) -> int:
        # Per entry: IP tag (16) + last line (24) + stride (13) +
        # confidence (2) + LRU (5).
        return self.entries * (16 + 24 + 13 + 2 + 5)

    def reset(self) -> None:
        self._table.clear()
        self._clock = 0
