"""Fault-tolerant campaign service: a durable scheduler daemon.

``repro serve`` runs :class:`~repro.service.daemon.CampaignService`, a
crash-safe scheduler in front of the simulation workers:

* a write-ahead, fsync'd, torn-tail-healing journal
  (:mod:`~repro.service.wal`) makes every queue/lease/result transition
  durable, so a SIGKILL'd daemon restarts into the exact same campaign
  state;
* time-bounded job leases (:mod:`~repro.service.leases`) renewed from
  worker heartbeats turn lost workers into bounded requeues with full
  attempt lineage — never lost or duplicated results;
* a content-addressed, CRC-verified result cache
  (:mod:`~repro.service.resultcache`) makes submission idempotent:
  identical (trace, config) submissions dedupe into one computation;
* a stdlib HTTP/JSON API (:mod:`~repro.service.api`) with backpressure
  (429 + Retry-After) and graceful SIGTERM drain, spoken by the
  bounded-retry client (:mod:`~repro.service.client`) behind
  ``repro submit/poll/fetch``.

See ``docs/service.md`` for the API reference and the failure-mode
table mapping each chaos scenario to the guarantee it proves.
"""

from repro.service.client import ServiceClient, read_endpoint
from repro.service.daemon import (CampaignService, ServiceConfig,
                                  canonical_job_config, job_content_key)
from repro.service.leases import Lease, LeaseTable
from repro.service.resultcache import ResultCache, content_key
from repro.service.wal import ServiceWAL, canonical_json, crc32_of

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "ServiceClient",
    "read_endpoint",
    "canonical_job_config",
    "job_content_key",
    "Lease",
    "LeaseTable",
    "ResultCache",
    "content_key",
    "ServiceWAL",
    "canonical_json",
    "crc32_of",
]
