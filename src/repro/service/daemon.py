"""The campaign scheduler daemon behind ``repro serve``.

:class:`CampaignService` turns the single-shot experiment runner into a
long-running, crash-safe simulation service:

* **Durable state** — every transition is written ahead to a CRC-framed
  fsync'd WAL (:mod:`repro.service.wal`); after a SIGKILL the daemon
  replays it and resumes the full queue and in-flight picture
  bit-identically (in-flight jobs of the dead epoch are provably
  orphaned and requeue immediately, with lineage).
* **Idempotent submission** — each job is keyed by the content hash of
  (trace digest, canonicalized config).  Identical submissions dedupe
  into one computation; completed keys are served from the
  checksum-verified result cache with **zero** recomputation.
* **Leases, not hand-offs** — a worker holds a time-bounded lease that
  the lease monitor renews from the worker's heartbeat file (the same
  channel the campaign supervisor reads).  An expired lease requeues
  its job exactly once per expiry; a late result from an expired lease
  is recorded only if no earlier attempt won (never twice).
* **Backpressure + drain** — submissions beyond ``max_queue`` pending
  jobs are refused with a typed 429/Retry-After; SIGTERM stops intake,
  finishes leased jobs, and leaves a WAL any restart resumes from.

The daemon executes jobs with :func:`repro.runner.worker.run_job` in
worker threads — simulations are deterministic and self-contained, so
a thread is as bit-exact as a process, and the WAL/lease machinery is
what guarantees loss-free accounting either way.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import ConfigError, ReproError, ServiceError
from repro.fleet.manifest import FleetManifest
from repro.fleet.registry import AgentRegistry
from repro.runner import worker as runner_worker
from repro.runner.jobs import JobSpec, classify_error
from repro.runner.resources import read_heartbeat
from repro.service.leases import LeaseTable
from repro.service.resultcache import ResultCache, content_key
from repro.service.wal import ServiceWAL

__all__ = ["CampaignService", "ServiceConfig", "canonical_job_config",
           "job_content_key"]


@dataclass
class ServiceConfig:
    """All daemon knobs in one place."""

    state_dir: Union[str, Path] = "service-state"
    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral; endpoint.json records it
    workers: int = 2
    lease_duration: float = 30.0     # seconds without heartbeat progress
    lease_poll: float = 0.25         # lease-monitor tick period
    max_requeues: int = 1            # expiries allowed to resurrect one job
    max_queue: int = 64              # pending jobs before 429 backpressure
    heartbeat_every: int = 2000      # worker ping cadence (accesses)
    retry_after: float = 1.0         # hint sent with 429/503 responses
    agent_timeout: float = 0.0       # silence before an agent is dead
    #                                  (0 = inherit lease_duration)
    agent_quarantine_after: int = 3  # consecutive failures trip breaker

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(
                f"service workers must be >= 1, got {self.workers}",
                field="workers",
            )
        if self.lease_duration <= 0:
            raise ConfigError(
                f"lease_duration must be positive, got "
                f"{self.lease_duration}", field="lease_duration",
            )
        if self.lease_poll <= 0:
            raise ConfigError(
                f"lease_poll must be positive, got {self.lease_poll}",
                field="lease_poll",
            )
        if self.max_queue < 1:
            raise ConfigError(
                f"max_queue must be >= 1, got {self.max_queue}",
                field="max_queue",
            )
        if self.max_requeues < 0:
            raise ConfigError(
                f"max_requeues must be >= 0, got {self.max_requeues}",
                field="max_requeues",
            )
        if self.agent_timeout < 0:
            raise ConfigError(
                f"agent_timeout must be >= 0, got {self.agent_timeout}",
                field="agent_timeout",
            )
        if self.agent_quarantine_after < 1:
            raise ConfigError(
                f"agent_quarantine_after must be >= 1, got "
                f"{self.agent_quarantine_after}",
                field="agent_quarantine_after",
            )


# ----------------------------------------------------------------------
# Content identity
# ----------------------------------------------------------------------

#: JobSpec fields that change simulation output — the identity the
#: content hash protects.  Transport/observation knobs (trace_path,
#: heartbeats, sanitizer flags) are deliberately excluded, mirroring
#: their exclusion from ``JobSpec.key``.
_IDENTITY_FIELDS = ("trace", "l1d", "l2", "scale", "mtps",
                    "warmup_fraction")


def canonical_job_config(spec: JobSpec) -> Dict[str, Any]:
    """The canonicalized config half of a job's content hash.

    Resolves the *actual* SystemConfig (with the job's DRAM rate) and
    BertiConfig field values into a sorted plain dict, so bumping a
    config default invalidates old cache entries instead of serving
    results computed under different hardware parameters.
    """
    from repro.core.config import BertiConfig
    from repro.simulator.config import default_config

    config = default_config()
    if spec.mtps:
        config = config.with_dram_mtps(spec.mtps)
    return {
        "job": {f: getattr(spec, f) for f in _IDENTITY_FIELDS},
        "system": dataclasses.asdict(config),
        "berti": dataclasses.asdict(BertiConfig()),
    }


def trace_digest(spec: JobSpec) -> str:
    """Trace identity half of the content hash.

    A job backed by a mapped ``.trc`` store hashes the store file's
    bytes (reusing the digest ``trace-store info`` reports); a catalog
    job uses its deterministic (name, scale) generation identity.
    """
    if spec.trace_path:
        from repro.memory.tracestore import file_digest

        return file_digest(spec.trace_path)
    return f"catalog:{spec.trace}:scale={spec.scale}"


def job_content_key(spec: JobSpec) -> str:
    return content_key(trace_digest(spec), canonical_job_config(spec))


# ----------------------------------------------------------------------
# In-memory state
# ----------------------------------------------------------------------

_JOB_FIELDS = _IDENTITY_FIELDS + ("trace_path",)


def spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    return {f: getattr(spec, f) for f in _JOB_FIELDS}


def spec_from_dict(data: Dict[str, Any]) -> JobSpec:
    known = {k: v for k, v in data.items() if k in _JOB_FIELDS}
    try:
        return JobSpec(**known)
    except TypeError as exc:
        raise ServiceError(f"malformed job spec: {exc}", status=400)


@dataclass
class _Job:
    """One unique (content-key) simulation the service owns."""

    spec: JobSpec
    content_key: str
    status: str = "pending"     # pending | leased | done | failed | cancelled
    attempt: int = 0            # attempts granted so far
    lease_id: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    campaigns: List[str] = field(default_factory=list)


@dataclass
class _Campaign:
    """An ordered set of submitted jobs sharing one campaign id."""

    cid: str
    entries: List[str]          # content keys, submission order
    state: str = "running"      # running | done | cancelled
    cached_at_submit: int = 0


class CampaignService:
    """The scheduler daemon: durable queue, leases, cache, HTTP API."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        now_fn: Optional[Callable[[], float]] = None,
        run_fn: Optional[Callable] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.state_dir = Path(self.config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._now = now_fn or time.monotonic
        self._run_fn = run_fn or runner_worker.run_job
        self.wal = ServiceWAL(self.state_dir / "service.wal")
        self.cache = ResultCache(self.state_dir / "cache")
        self._hb_dir = self.state_dir / "hb"

        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}          # content_key -> _Job
        self._campaigns: Dict[str, _Campaign] = {}
        self._pending: deque = deque()            # content keys
        self._digests: Dict[str, str] = {}        # content_key -> sha256:…
        self.epoch = 1
        self.fleet = AgentRegistry(
            timeout=self.config.agent_timeout or self.config.lease_duration,
            breaker_after=self.config.agent_quarantine_after,
            clock=self._now,
        )
        self.manifest = FleetManifest(
            self.state_dir / "fleet-manifest.json", clock=self._now,
        )
        self._fleet_engaged = False   # ever had a leasable agent?
        self.leases = LeaseTable(self.config.lease_duration,
                                 epoch=self.epoch,
                                 max_requeues=self.config.max_requeues)
        self.draining = False
        self.jobs_computed = 0
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._httpd = None
        self._recover()

    # ------------------------------------------------------------------
    # Recovery (WAL replay)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        records = self.wal.replay()
        last_epoch = 0
        open_leases: Dict[str, Dict[str, Any]] = {}  # key -> lease record
        for rec in records:
            kind = rec.get("type")
            if kind == "epoch":
                last_epoch = max(last_epoch, int(rec.get("epoch", 0)))
            elif kind == "campaign":
                entries = []
                for item in rec.get("jobs", []):
                    key = item["content_key"]
                    entries.append(key)
                    if key not in self._jobs:
                        job = _Job(spec=spec_from_dict(item["spec"]),
                                   content_key=key)
                        self._jobs[key] = job
                        self._pending.append(key)
                    if item.get("digest"):
                        # The digest promised to agents is the one from
                        # submission time, not a re-hash of whatever the
                        # file holds now.
                        self._digests[key] = item["digest"]
                    self._jobs[key].campaigns.append(rec["cid"])
                self._campaigns[rec["cid"]] = _Campaign(
                    cid=rec["cid"], entries=entries,
                    cached_at_submit=rec.get("cached", 0),
                )
            elif kind == "lease":
                job = self._jobs.get(rec.get("content_key"))
                if job is not None:
                    job.status = "leased"
                    job.attempt = max(job.attempt, rec.get("attempt", 1))
                    open_leases[job.content_key] = rec
            elif kind in ("lease-expired", "refused"):
                job = self._jobs.get(rec.get("content_key"))
                if job is not None:
                    open_leases.pop(job.content_key, None)
                    if rec.get("requeued", True):
                        job.status = "pending"
                    else:
                        job.status = "failed"
                        job.error = rec.get("error")
            elif kind == "result":
                job = self._jobs.get(rec.get("content_key"))
                if job is not None:
                    open_leases.pop(job.content_key, None)
                    if rec.get("status") == "ok":
                        job.status = "done"
                    else:
                        job.status = "failed"
                        job.error = rec.get("error")
            elif kind == "cancel":
                campaign = self._campaigns.get(rec.get("cid"))
                if campaign is not None:
                    campaign.state = "cancelled"

        self.epoch = last_epoch + 1
        self.leases = LeaseTable(self.config.lease_duration,
                                 epoch=self.epoch,
                                 max_requeues=self.config.max_requeues)
        # Reconstruct every job's full attempt lineage — grants,
        # expiries, refusals, results, across all dead epochs and
        # whichever agents held them — so a restarted daemon reports
        # history instead of amnesia, and requeue budgets survive
        # restarts.
        self.leases.absorb_history(records)
        self.wal.append({"type": "epoch", "epoch": self.epoch})

        # Leases from the dead epoch are orphans: their worker threads
        # died with the process.  Requeue each held job exactly once,
        # with the expiry recorded in WAL + lineage.
        for key, rec in open_leases.items():
            job = self._jobs[key]
            job.status = "pending"
            job.lease_id = None
            orphan = {
                "type": "lease-expired", "content_key": key,
                "lease_id": rec.get("lease_id"),
                "agent": rec.get("agent"),
                "reason": "daemon epoch lost", "requeued": True,
            }
            self.wal.append(orphan)
            self.leases.absorb_history([orphan])
        # Rebuild the pending queue in deterministic submission order.
        self._pending = deque(
            key for c in self._campaigns.values() if c.state != "cancelled"
            for key in c.entries
            if self._jobs[key].status == "pending"
        )
        seen = set()
        self._pending = deque(
            k for k in self._pending if not (k in seen or seen.add(k))
        )
        for campaign in self._campaigns.values():
            self._refresh_campaign(campaign)

    # ------------------------------------------------------------------
    # Submission (idempotent, deduplicated, backpressured)
    # ------------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        jobs_in = payload.get("jobs")
        if not isinstance(jobs_in, list) or not jobs_in:
            raise ServiceError("submission needs a non-empty 'jobs' list",
                               status=400, field="jobs")
        specs = [spec_from_dict(item) if isinstance(item, dict)
                 else self._reject_job(item) for item in jobs_in]
        digests = [trace_digest(spec) for spec in specs]
        keys = [content_key(digest, canonical_job_config(spec))
                for spec, digest in zip(specs, digests)]
        ident = hashlib.sha256(
            ("\n".join(sorted(set(keys)))
             + "\n" + str(payload.get("idempotency_key", ""))).encode()
        ).hexdigest()[:16]
        cid = f"c{ident}"

        with self._lock:
            if self.draining:
                raise ServiceError(
                    "daemon is draining; submissions refused", status=503,
                    retry_after=self.config.retry_after,
                )
            existing = self._campaigns.get(cid)
            if existing is not None:
                # Idempotent resubmission: same content, same campaign.
                return self._submit_response(existing, created=False)

            new_keys = [
                k for i, k in enumerate(keys)
                if k not in self._jobs and k not in keys[:i]
            ]
            fresh = [k for k in new_keys if not self._cache_has_verified(k)]
            if len(self._pending) + len(fresh) > self.config.max_queue:
                raise ServiceError(
                    f"queue full: {len(self._pending)} pending + "
                    f"{len(fresh)} new exceeds max_queue="
                    f"{self.config.max_queue}", status=429,
                    retry_after=self.config.retry_after, field="max_queue",
                )

            cached = 0
            entries: List[str] = []
            for spec, key, digest in zip(specs, keys, digests):
                entries.append(key)
                self._digests[key] = digest
                job = self._jobs.get(key)
                if job is None:
                    job = _Job(spec=spec, content_key=key)
                    self._jobs[key] = job
                    if self._cache_has_verified(key):
                        job.status = "done"
                    else:
                        self._pending.append(key)
                elif job.status == "failed":
                    # Failures are never memoized: a fresh submission
                    # buys the job a fresh attempt.
                    job.status = "pending"
                    job.error = None
                    self._pending.append(key)
                if job.status == "done" and cid not in job.campaigns:
                    cached += 1
                if cid not in job.campaigns:
                    job.campaigns.append(cid)

            campaign = _Campaign(cid=cid, entries=entries,
                                 cached_at_submit=cached)
            self._campaigns[cid] = campaign
            self.wal.append({
                "type": "campaign", "cid": cid, "cached": cached,
                "jobs": [{"content_key": k, "spec": spec_to_dict(s),
                          "digest": d}
                         for k, s, d in zip(keys, specs, digests)],
            })
            self._refresh_campaign(campaign)
            self._work.notify_all()
            return self._submit_response(campaign, created=True)

    @staticmethod
    def _reject_job(item) -> JobSpec:
        raise ServiceError(f"job entries must be objects, got "
                           f"{type(item).__name__}", status=400)

    def _cache_has_verified(self, key: str) -> bool:
        """Cache hit that is safe to serve: present *and* verified.

        Corruption found here quarantines the entry and reports a miss,
        so a poisoned cache degrades to recomputation, never to output.
        """
        if not self.cache.has(key):
            return False
        try:
            return self.cache.get(key) is not None
        except ReproError:
            return False  # quarantined by the read; treat as a miss

    def _submit_response(self, campaign: _Campaign,
                         created: bool) -> Dict[str, Any]:
        jobs = []
        for key in campaign.entries:
            job = self._jobs[key]
            jobs.append({
                "content_key": key,
                "key": job.spec.key,
                "status": job.status,
                "cached": job.status == "done",
            })
        done = sum(1 for j in jobs if j["status"] == "done")
        return {
            "campaign": campaign.cid,
            "created": created,
            "state": campaign.state,
            "jobs": jobs,
            # Jobs this submission did not have to compute: the cache
            # (or an earlier campaign) already holds their results.
            "cache_hits": done,
            "total": len(jobs),
            "all_cached": done == len(jobs),
        }

    # ------------------------------------------------------------------
    # Status / results / cancel
    # ------------------------------------------------------------------

    def _campaign_or_404(self, cid: str) -> _Campaign:
        campaign = self._campaigns.get(cid)
        if campaign is None:
            raise ServiceError(f"unknown campaign {cid!r}", status=404)
        return campaign

    def status(self, cid: str) -> Dict[str, Any]:
        with self._lock:
            campaign = self._campaign_or_404(cid)
            self._refresh_campaign(campaign)
            jobs = []
            counts: Dict[str, int] = {}
            for key in campaign.entries:
                job = self._jobs[key]
                counts[job.status] = counts.get(job.status, 0) + 1
                lease = self.leases.lease_for(key)
                jobs.append({
                    "content_key": key,
                    "key": job.spec.key,
                    "trace": job.spec.trace,
                    "l1d": job.spec.l1d,
                    "status": job.status,
                    "attempt": job.attempt,
                    "lease": lease.describe() if lease else None,
                    "lineage": self.leases.lineage(key),
                })
            return {
                "campaign": cid,
                "state": campaign.state,
                "counts": counts,
                "jobs": jobs,
            }

    def results(self, cid: str) -> Dict[str, Any]:
        """Verified results for a finished campaign.

        Every payload is re-read through the checksummed cache; an entry
        that fails verification is quarantined and its job silently
        requeued — the response then says 409/recomputing and the client
        polls until the healed result lands.
        """
        with self._lock:
            campaign = self._campaign_or_404(cid)
            if campaign.state == "cancelled":
                raise ServiceError(f"campaign {cid} was cancelled",
                                   status=409)
            self._refresh_campaign(campaign)
            if campaign.state != "done":
                raise ServiceError(
                    f"campaign {cid} still running", status=409,
                    retry_after=self.config.retry_after,
                )
            results = []
            requeued = 0
            for key in campaign.entries:
                job = self._jobs[key]
                if job.status == "failed":
                    results.append({"content_key": key, "key": job.spec.key,
                                    "status": "failed", "error": job.error})
                    continue
                try:
                    payload = self.cache.get(key)
                except ReproError:
                    payload = None  # corrupt: quarantined by the read
                if payload is None:
                    requeued += 1
                    job.status = "pending"
                    self._pending.append(key)
                    continue
                results.append({"content_key": key, "key": job.spec.key,
                                "status": "ok", "result": payload})
            if requeued:
                campaign.state = "running"
                self._work.notify_all()
                raise ServiceError(
                    f"{requeued} cached results failed verification and "
                    f"are being recomputed; poll again", status=409,
                    retry_after=self.config.retry_after,
                )
            return {"campaign": cid, "state": campaign.state,
                    "results": results}

    def cancel(self, cid: str) -> Dict[str, Any]:
        with self._lock:
            campaign = self._campaign_or_404(cid)
            if campaign.state == "running":
                campaign.state = "cancelled"
                self.wal.append({"type": "cancel", "cid": cid})
                for key in campaign.entries:
                    job = self._jobs[key]
                    others = [c for c in job.campaigns if c != cid
                              and self._campaigns[c].state == "running"]
                    if job.status == "pending" and not others:
                        job.status = "cancelled"
            return {"campaign": cid, "state": campaign.state}

    def healthz(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "ok": True,
                "epoch": self.epoch,
                "draining": self.draining,
                "queue_depth": sum(
                    1 for k in self._pending
                    if self._jobs[k].status == "pending"
                ),
                "live_leases": len(self.leases.live()),
                "jobs_computed": self.jobs_computed,
                "campaigns": len(self._campaigns),
                "cache": self.cache.stats(),
                "fleet": {
                    "agents": len(self.fleet.live_agents()),
                    "engaged": self._fleet_engaged,
                    "degraded": (self._fleet_engaged
                                 and self.manifest.degraded),
                },
            }

    def _refresh_campaign(self, campaign: _Campaign) -> None:
        if campaign.state == "cancelled":
            return
        states = {self._jobs[k].status for k in campaign.entries}
        campaign.state = (
            "done" if states <= {"done", "failed"} else "running"
        )

    # ------------------------------------------------------------------
    # Execution: worker threads + lease monitor
    # ------------------------------------------------------------------

    def _fleet_blocks_local(self) -> bool:
        """Remote agents available: the local pool stands down.

        The moment the last leasable agent dies or quarantines, this
        flips false and the daemon degrades to its own worker threads —
        jobs keep flowing, and the fleet manifest records the window.
        """
        return any(r.leasable for r in self.fleet.live_agents())

    def _next_job(self) -> Optional[_Job]:
        """Blocking pop of the next pending job (None = shutting down)."""
        with self._work:
            while True:
                if self._stop.is_set() or self.draining:
                    return None
                while not self._fleet_blocks_local() and self._pending:
                    key = self._pending.popleft()
                    job = self._jobs[key]
                    if job.status == "pending":
                        job.attempt += 1
                        job.status = "leased"
                        lease = self.leases.grant(
                            key, job.attempt, self._now(),
                            heartbeat_path=str(
                                self._hb_dir / f"{key[:16]}-{job.attempt}"
                                               f".json"),
                        )
                        job.lease_id = lease.lease_id
                        self.wal.append({
                            "type": "lease", "content_key": key,
                            "lease_id": lease.lease_id,
                            "attempt": job.attempt, "epoch": self.epoch,
                        })
                        return job
                self._work.wait(timeout=0.5)

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            lease = self.leases.lease_for(job.content_key)
            spec = dataclasses.replace(
                job.spec,
                heartbeat_path=lease.heartbeat_path,
                heartbeat_every=self.config.heartbeat_every,
            )
            lease_id, attempt = lease.lease_id, lease.attempt
            error: Optional[Dict[str, Any]] = None
            result = None
            try:
                result = self._run_fn(spec, attempt)
            except ReproError as exc:
                error = {
                    "error_type": type(exc).__name__,
                    "kind": classify_error(exc),
                    "message": str(exc),
                }
            except Exception as exc:  # noqa: BLE001 — isolation point
                error = {
                    "error_type": type(exc).__name__,
                    "kind": "crash",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            self._record_attempt(job, lease_id, attempt, result, error)

    def _record_attempt(self, job: _Job, lease_id: str, attempt: int,
                        result, error: Optional[Dict[str, Any]],
                        agent: Optional[str] = None) -> bool:
        """Record one attempt's outcome; ``False`` = dropped as late.

        Shared by the local worker threads and the remote-agent result
        endpoint — idempotency lives here: a duplicate delivery releases
        a lease that no longer exists and finds the job already
        resolved, so it is dropped with a ``late-result`` lineage entry
        instead of being recorded twice.
        """
        with self._lock:
            lease = self.leases.release(
                lease_id, "ok" if error is None else "failed"
            )
            late = lease is None
            if late and job.status in ("done", "failed", "cancelled"):
                # An earlier attempt (or a cancel) already resolved the
                # job; recording again would duplicate it.  Drop, with
                # lineage.
                self.leases.record_late_result(job.content_key, lease_id)
                return False
            lineage = self.leases.lineage(job.content_key)
            if error is None:
                payload = (result.to_dict()
                           if hasattr(result, "to_dict") else result)
                self.cache.put(job.content_key, payload)
                job.status = "done"
                job.error = None
                self.jobs_computed += 1
                self.wal.append({
                    "type": "result", "content_key": job.content_key,
                    "status": "ok", "lease_id": lease_id,
                    "attempt": attempt, "lineage": lineage,
                    "agent": agent,
                })
            else:
                job.status = "failed"
                job.error = error
                self.wal.append({
                    "type": "result", "content_key": job.content_key,
                    "status": "failed", "lease_id": lease_id,
                    "attempt": attempt, "error": error,
                    "lineage": lineage, "agent": agent,
                })
            job.lease_id = None
            for cid in job.campaigns:
                self._refresh_campaign(self._campaigns[cid])
            self._work.notify_all()
            return True

    def _lease_monitor(self) -> None:
        while not self._stop.wait(self.config.lease_poll):
            self._monitor_tick(self._now())

    def _monitor_tick(self, now: float) -> None:
        """One liveness sweep: renew, reap dead agents, expire, requeue.

        Factored out of the monitor thread so tests can drive it with an
        injected clock instead of sleeping through real lease windows.
        """
        with self._lock:
            for lease in self.leases.live():
                if not lease.heartbeat_path:
                    continue
                data = read_heartbeat(lease.heartbeat_path)
                if data is not None and data.get("seq") != lease.last_seq:
                    self.leases.renew(lease.lease_id, now,
                                      seq=data.get("seq"))
            # Remote agents renew by HTTP, not heartbeat files.  One
            # that has gone silent past the agent timeout is dead as a
            # failure domain: force-expire every lease it holds so the
            # ordinary requeue path below reclaims the jobs, and note
            # the death (with the orphaned leases) in the manifest.
            reaped: Dict[str, str] = {}
            for record in self.fleet.reap_stale(now):
                held = self.leases.leases_of_agent(record.agent_id)
                self.manifest.record(
                    "agent-dead", agent=record.agent_id,
                    name=record.name,
                    leases=[lease.lease_id for lease in held],
                )
                for lease in held:
                    lease.expires_at = now
                    reaped[lease.lease_id] = record.agent_id
            if reaped:
                self._update_degraded()
            for lease in self.leases.expire(now):
                job = self._jobs.get(lease.job_key)
                if job is None or job.status != "leased":
                    continue
                requeue = self.leases.may_requeue(lease.job_key)
                if requeue:
                    job.status = "pending"
                    self._pending.append(lease.job_key)
                else:
                    exc = self.leases.expiry_error(lease.job_key)
                    job.status = "failed"
                    job.error = {
                        "error_type": type(exc).__name__,
                        "kind": "timeout", "message": str(exc),
                    }
                    for cid in job.campaigns:
                        self._refresh_campaign(self._campaigns[cid])
                job.lease_id = None
                reason = ("agent lost" if lease.lease_id in reaped
                          else "no heartbeat before expiry")
                self.wal.append({
                    "type": "lease-expired",
                    "content_key": lease.job_key,
                    "lease_id": lease.lease_id,
                    "agent": lease.agent,
                    "reason": reason,
                    "requeued": requeue,
                    "error": job.error,
                })
                if lease.agent is not None:
                    self.manifest.record(
                        "agent-requeue", agent=lease.agent,
                        content_key=lease.job_key,
                        lease_id=lease.lease_id, requeued=requeue,
                    )
                self._work.notify_all()

    # ------------------------------------------------------------------
    # Fleet: remote agent endpoints
    # ------------------------------------------------------------------

    def _update_degraded(self) -> None:
        """Reconcile degraded mode with the live-agent census.

        Call with ``self._lock`` held.  Degraded mode only exists once
        the fleet has engaged (a single-host daemon that never saw an
        agent is not "degraded", it is just local); from then on, zero
        leasable agents opens a degradation window in the manifest and
        wakes the local pool, and the next leasable agent closes it.
        """
        leasable = any(r.leasable for r in self.fleet.live_agents())
        if leasable:
            self._fleet_engaged = True
        if not self._fleet_engaged:
            return
        if leasable:
            self.manifest.exit_degraded()
        else:
            self.manifest.enter_degraded(
                "zero live agents; daemon local pool active")
        self._work.notify_all()

    def _touch_agent(self, agent_id: str):
        """Liveness contact from an agent; handles partition rejoin."""
        previous = self.fleet.get(agent_id)
        previous_state = previous.state if previous is not None else None
        record = self.fleet.touch(agent_id)  # 410 for unknown agents
        if previous_state == "dead":
            self.manifest.record("agent-rejoined", agent=agent_id,
                                 name=record.name)
            self._update_degraded()
        return record

    def agent_register(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            if self.draining:
                raise ServiceError(
                    "daemon is draining; agents refused", status=503,
                    retry_after=self.config.retry_after,
                )
            record = self.fleet.register(
                name=str(payload.get("name", "")),
                host=str(payload.get("host", "")),
                pool=int(payload.get("pool", 1)),
            )
            self.manifest.record("agent-registered", agent=record.agent_id,
                                 name=record.name, pool=record.pool)
            self._update_degraded()
            return {
                "agent": record.agent_id,
                "epoch": self.epoch,
                "lease_duration": self.config.lease_duration,
                "heartbeat_every": self.config.heartbeat_every,
            }

    def agent_lease(self, agent_id: str,
                    payload: Dict[str, Any]) -> Dict[str, Any]:
        """Grant up to ``max`` pending jobs to a remote agent."""
        want = max(1, int(payload.get("max", 1)))
        with self._lock:
            record = self._touch_agent(agent_id)
            granted: List[Dict[str, Any]] = []
            if record.leasable and not self.draining:
                while self._pending and len(granted) < want:
                    key = self._pending.popleft()
                    job = self._jobs[key]
                    if job.status != "pending":
                        continue
                    job.attempt += 1
                    job.status = "leased"
                    lease = self.leases.grant(key, job.attempt,
                                              self._now(), agent=agent_id)
                    job.lease_id = lease.lease_id
                    record.leases_granted += 1
                    self.wal.append({
                        "type": "lease", "content_key": key,
                        "lease_id": lease.lease_id,
                        "attempt": job.attempt, "epoch": self.epoch,
                        "agent": agent_id,
                    })
                    digest = self._digests.get(key)
                    if digest is None:
                        digest = trace_digest(job.spec)
                        self._digests[key] = digest
                    granted.append({
                        "lease_id": lease.lease_id,
                        "content_key": key,
                        "key": job.spec.key,
                        "attempt": job.attempt,
                        "spec": spec_to_dict(job.spec),
                        "trace_digest": digest,
                    })
                if granted:
                    self.fleet.activate(agent_id)
            return {
                "leases": granted,
                "epoch": self.epoch,
                "state": record.state,
                "draining": self.draining,
            }

    def agent_renew(self, agent_id: str,
                    payload: Dict[str, Any]) -> Dict[str, Any]:
        """Bulk lease renewal — the agent's HTTP heartbeat."""
        with self._lock:
            record = self._touch_agent(agent_id)
            now = self._now()
            kept: List[str] = []
            lost: List[str] = []
            for lease_id in payload.get("leases", []):
                if self.leases.renew(str(lease_id), now):
                    kept.append(str(lease_id))
                else:
                    # The lease died (expiry, requeue, daemon restart):
                    # the agent must abandon the attempt — any result it
                    # still delivers will take the late-result path.
                    lost.append(str(lease_id))
            return {
                "ok": kept, "lost": lost, "epoch": self.epoch,
                "draining": self.draining or record.state == "draining",
            }

    def agent_result(self, agent_id: str,
                     payload: Dict[str, Any]) -> Dict[str, Any]:
        """Record a remote attempt's outcome (``ok``/``failed``/``refused``).

        Exactly-once by construction: duplicate deliveries (network
        retries, duplicated packets) release an already-dead lease and
        drop through the late-result path, never recording twice.
        """
        lease_id = str(payload.get("lease_id", ""))
        key = payload.get("content_key")
        status = payload.get("status")
        if status not in ("ok", "failed", "refused"):
            raise ServiceError(
                f"result status must be ok|failed|refused, got {status!r}",
                status=400, field="status",
            )
        with self._lock:
            self._touch_agent(agent_id)
            job = self._jobs.get(key)
            if job is None:
                raise ServiceError(f"unknown job {key!r}", status=404)
            attempt = int(payload.get("attempt", job.attempt))

            if status == "refused":
                recorded = self._record_refusal(job, lease_id, attempt,
                                                agent_id, payload)
            else:
                error = payload.get("error") if status == "failed" else None
                if status == "failed" and error is None:
                    error = {"error_type": "FleetError", "kind": "crash",
                             "message": "agent reported failure without "
                                        "detail"}
                recorded = self._record_attempt(
                    job, lease_id, attempt, payload.get("result"), error,
                    agent=agent_id,
                )
            if recorded:
                breaker = self.fleet.record_result(
                    agent_id, "ok" if status == "ok" else status)
                if breaker == "quarantined":
                    self.manifest.record("agent-quarantined",
                                         agent=agent_id)
                    self._update_degraded()
            record = self.fleet.get(agent_id)
            if (record is not None and record.state == "draining"
                    and not self.leases.leases_of_agent(agent_id)):
                # Last in-flight result landed: the drain completes.
                self.fleet.mark_drained(agent_id)
                self._update_degraded()
            return {"recorded": recorded, "duplicate": not recorded,
                    "epoch": self.epoch}

    def _record_refusal(self, job: _Job, lease_id: str, attempt: int,
                        agent_id: str, payload: Dict[str, Any]) -> bool:
        """A digest-mismatch refusal: requeue within the lease budget.

        The job never executed, so there is nothing to cache — but the
        refusal burns one requeue credit (a poisoned trace store must
        not ping-pong between agents forever) and is durably recorded.
        """
        lease = self.leases.release(lease_id, "refused")
        if lease is None:
            if job.status in ("done", "failed", "cancelled"):
                self.leases.record_late_result(job.content_key, lease_id)
            return False
        requeue = self.leases.record_refusal(job.content_key, lease_id,
                                             agent=agent_id)
        error = payload.get("error") or {
            "error_type": "DigestMismatch", "kind": "trace",
            "message": "agent refused job: trace digest mismatch",
        }
        if requeue:
            job.status = "pending"
            job.error = None
            self._pending.append(job.content_key)
        else:
            job.status = "failed"
            job.error = error
            for cid in job.campaigns:
                self._refresh_campaign(self._campaigns[cid])
        job.lease_id = None
        self.wal.append({
            "type": "refused", "content_key": job.content_key,
            "lease_id": lease_id, "attempt": attempt,
            "agent": agent_id, "requeued": requeue,
            "error": None if requeue else error,
        })
        self.manifest.record("job-refused", agent=agent_id,
                             content_key=job.content_key,
                             lease_id=lease_id, requeued=requeue)
        self._work.notify_all()
        return True

    def agent_drain(self, agent_id: str) -> Dict[str, Any]:
        with self._lock:
            record = self.fleet.drain(agent_id)
            self.manifest.record("agent-draining", agent=agent_id)
            if not self.leases.leases_of_agent(agent_id):
                # Nothing in flight: the drain completes immediately.
                self.fleet.mark_drained(agent_id)
            self._update_degraded()
            return {"agent": agent_id, "state": record.state}

    def fleet_status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "epoch": self.epoch,
                "engaged": self._fleet_engaged,
                "degraded": self.manifest.degraded,
                "degraded_windows": self.manifest.degraded_windows(),
                "agents": self.fleet.describe(),
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP API, start workers, write endpoint.json."""
        from repro.service.api import make_server

        self._hb_dir.mkdir(parents=True, exist_ok=True)
        self._httpd = make_server(self)
        host, port = self._httpd.server_address[:2]
        endpoint = {"host": host, "port": port, "pid": os.getpid(),
                    "epoch": self.epoch}
        (self.state_dir / "endpoint.json").write_text(
            json.dumps(endpoint), encoding="utf-8"
        )
        threads = [threading.Thread(target=self._httpd.serve_forever,
                                    name="repro-http", daemon=True),
                   threading.Thread(target=self._lease_monitor,
                                    name="repro-leases", daemon=True)]
        threads += [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-worker-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        self._threads = threads
        for t in threads:
            t.start()

    @property
    def address(self) -> tuple:
        if self._httpd is None:
            raise ServiceError("daemon not started", status=500)
        return self._httpd.server_address[:2]

    def drain(self) -> None:
        """SIGTERM path: refuse intake, finish leased jobs, keep state."""
        with self._lock:
            if self.draining:
                return
            self.draining = True
            self.wal.append({"type": "drain", "epoch": self.epoch})
            self._work.notify_all()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain, wait for in-flight leases, shut everything down."""
        self.drain()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self.leases.live():
                    break
            time.sleep(0.05)
        self._stop.set()
        with self._work:
            self._work.notify_all()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)
        self._threads = []
        self.wal.close()

    def serve_forever(self, handle_signals: bool = True) -> None:
        """Blocking entry point for ``repro serve``."""
        self.start()
        done = threading.Event()

        if handle_signals:
            def on_term(signum, frame):
                self.drain()
                done.set()

            signal.signal(signal.SIGTERM, on_term)
            signal.signal(signal.SIGINT, on_term)
        try:
            while not done.wait(timeout=0.5):
                pass
        finally:
            self.stop()
