"""Tests for BertiConfig, including the Table I storage accounting."""

import pytest

from repro.core.config import BertiConfig


class TestTableI:
    """Table I of the paper: per-structure storage and the 2.55 KB total."""

    def test_history_table_storage(self):
        kb = BertiConfig().storage_breakdown_kb()["history_table"]
        assert kb == pytest.approx(0.74, abs=0.02)

    def test_delta_table_storage(self):
        kb = BertiConfig().storage_breakdown_kb()["table_of_deltas"]
        assert kb == pytest.approx(0.62, abs=0.02)

    def test_queue_timestamp_storage(self):
        kb = BertiConfig().storage_breakdown_kb()["pq_mshr_timestamps"]
        assert kb == pytest.approx(0.06, abs=0.01)

    def test_l1d_latency_field_storage(self):
        kb = BertiConfig().storage_breakdown_kb()["l1d_latency_fields"]
        assert kb == pytest.approx(1.13, abs=0.01)

    def test_total_is_2_55_kb(self):
        assert BertiConfig().storage_kb() == pytest.approx(2.55, abs=0.02)


class TestScaling:
    def test_scaled_up(self):
        cfg = BertiConfig().scaled(2.0)
        assert cfg.history_sets == 16
        assert cfg.delta_table_entries == 32
        assert cfg.storage_bits() > BertiConfig().storage_bits()

    def test_scaled_down(self):
        cfg = BertiConfig().scaled(0.25)
        assert cfg.history_sets == 2
        assert cfg.delta_table_entries == 4

    def test_scaled_never_zero(self):
        cfg = BertiConfig().scaled(0.01)
        assert cfg.history_sets >= 1
        assert cfg.delta_table_entries >= 1

    def test_with_deltas_per_entry(self):
        cfg = BertiConfig().with_deltas_per_entry(4)
        assert cfg.deltas_per_entry == 4
        assert cfg.delta_table_bits() < BertiConfig().delta_table_bits()

    def test_frozen(self):
        with pytest.raises(Exception):
            BertiConfig().history_sets = 2


class TestWatermarks:
    def test_defaults_match_paper(self):
        cfg = BertiConfig()
        assert cfg.high_watermark == 0.65
        assert cfg.medium_watermark == 0.35
        assert cfg.low_watermark == cfg.medium_watermark  # LLC tier disabled
        assert cfg.warmup_watermark == 0.80
        assert cfg.mshr_watermark == 0.70

    def test_with_watermarks(self):
        cfg = BertiConfig().with_watermarks(0.8, 0.5)
        assert cfg.high_watermark == 0.8
        assert cfg.medium_watermark == 0.5

    @pytest.mark.parametrize("high,medium", [(0.3, 0.6), (1.2, 0.5), (0.5, -0.1)])
    def test_invalid_combinations(self, high, medium):
        with pytest.raises(ValueError):
            BertiConfig().with_watermarks(high, medium)


class TestStructuralDefaults:
    def test_paper_geometry(self):
        cfg = BertiConfig()
        assert cfg.history_sets * cfg.history_ways == 128
        assert cfg.delta_table_entries == 16
        assert cfg.deltas_per_entry == 16
        assert cfg.max_prefetch_deltas == 12
        assert cfg.counter_max == 16
        assert cfg.max_deltas_per_search == 8
        assert cfg.delta_bits == 13
        assert cfg.latency_bits == 12
        assert cfg.timestamp_bits == 16
