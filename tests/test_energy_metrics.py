"""Tests for the energy model, metrics, and report helpers."""

import pytest

from repro import simulate
from repro.analysis.metrics import (
    average_accuracy,
    average_mpki,
    geomean,
    geomean_speedup,
    traffic_normalised,
)
from repro.analysis.report import format_series, format_table
from repro.energy import EnergyModel, EnergyParams
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.synthetic import make_trace, pointer_chase, random_access


@pytest.fixture(scope="module")
def runs():
    # A half-random workload: the random part is unprefetchable, so
    # spraying prefetchers (IPCP's NL/GS) pay for junk there while a
    # coverage-gated prefetcher (Berti) stays quiet.
    t = make_trace(
        "e",
        [
            pointer_chase(0x402, 0x1000000, [-1], 1500, gap=10,
                          region_lines=4096),
            random_access(0x517, 0x2000000, 1 << 14, 1500, gap=10, seed=4),
        ],
    )
    return {
        "none": simulate(t),
        "berti": simulate(t, l1d_prefetcher=make_prefetcher("berti")),
        "ipcp": simulate(t, l1d_prefetcher=make_prefetcher("ipcp")),
    }


class TestEnergyModel:
    def test_positive_components(self, runs):
        b = EnergyModel().evaluate(runs["none"])
        assert b.l1d_nj > 0 and b.dram_nj > 0
        assert b.total_nj == pytest.approx(
            b.l1d_nj + b.l2_nj + b.llc_nj + b.dram_nj
        )

    def test_dram_dominates_for_miss_heavy(self, runs):
        b = EnergyModel().evaluate(runs["none"])
        assert b.dram_nj > b.l1d_nj

    def test_normalised_baseline_is_one(self, runs):
        em = EnergyModel()
        assert em.normalised(runs["none"], runs["none"]) == pytest.approx(1.0)

    def test_prefetching_adds_energy(self, runs):
        em = EnergyModel()
        assert em.normalised(runs["berti"], runs["none"]) >= 1.0

    def test_accurate_prefetcher_cheaper_than_sprayer(self, runs):
        """Figure 15's core claim: Berti's energy overhead is the lowest
        because its accuracy is the highest."""
        em = EnergyModel()
        e_berti = em.normalised(runs["berti"], runs["none"])
        e_ipcp = em.normalised(runs["ipcp"], runs["none"])
        assert e_berti < e_ipcp

    def test_custom_params(self, runs):
        em = EnergyModel(EnergyParams(dram_column_access_pj=0.0,
                                      dram_row_activate_pj=0.0,
                                      dram_write_pj=0.0))
        assert em.evaluate(runs["none"]).dram_nj == 0.0

    def test_as_dict(self, runs):
        d = EnergyModel().evaluate(runs["none"]).as_dict()
        assert set(d) == {"l1d", "l2", "llc", "dram", "total"}


class TestMetrics:
    def test_geomean_basics(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0, -1]) == 0.0

    def test_geomean_speedup(self, runs):
        per_trace = {"e": {"ip_stride": runs["none"], "berti": runs["berti"]}}
        out = geomean_speedup(per_trace, baseline_name="ip_stride")
        assert out["ip_stride"] == pytest.approx(1.0)
        assert out["berti"] == pytest.approx(
            runs["berti"].ipc / runs["none"].ipc
        )

    def test_average_mpki(self, runs):
        vals = [runs["none"], runs["berti"]]
        assert average_mpki(vals, "l1d") == pytest.approx(
            (runs["none"].l1d_mpki + runs["berti"].l1d_mpki) / 2
        )
        assert average_mpki([], "l2") == 0.0

    def test_average_accuracy(self, runs):
        assert 0 <= average_accuracy([runs["berti"]]) <= 1

    def test_traffic_normalised(self, runs):
        t = traffic_normalised(runs["berti"], runs["none"])
        assert set(t) == {"l1d_l2", "l2_llc", "llc_dram"}
        assert all(v >= 0 for v in t.values())


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out and "3.250" in out

    def test_format_series(self):
        out = format_series("S", {"berti": {"x1": 1.0, "x2": 2.0},
                                  "mlop": {"x1": 0.5}})
        assert "berti" in out and "x2" in out

    def test_empty_table(self):
        out = format_table(["h"], [])
        assert "h" in out
