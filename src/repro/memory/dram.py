"""DRAM channel/bank model with row buffers and bandwidth limits.

Models what the paper's evaluation depends on (§IV-A "Berti and variable
cache fill latency"): variable access time from open-page row-buffer hits
vs. misses, bank conflicts, read/write queue contention, and a channel
data bus whose throughput is set by the DDR transfer rate (MTPS).  The
fill latency observed at the L1D therefore varies widely — the property
Berti's timeliness learning exploits.

Timing (Table II): 4 KB row buffer per bank, open-page policy, burst
length 16, tRP = tRCD = tCAS = 12.5 ns.  At the simulator's 4 GHz core
clock, 12.5 ns = 50 core cycles.

The model is *forward-only*: requests are presented in approximately
nondecreasing time order and each bank keeps a "busy until" horizon plus
the currently open row.  This captures queueing and row locality without
a global event queue, which keeps pure-Python simulation tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class DRAMConfig:
    """Timing and geometry parameters for one DRAM channel."""

    mtps: int = 6400                  # mega-transfers per second
    core_freq_ghz: float = 4.0
    banks: int = 16
    row_size_bytes: int = 4096
    trp_cycles: int = 50              # precharge (12.5 ns @ 4 GHz)
    trcd_cycles: int = 50             # activate
    tcas_cycles: int = 50             # column access
    read_queue: int = 64
    write_queue: int = 64
    write_watermark: float = 7 / 8    # drain writes above this occupancy

    @property
    def transfer_cycles_per_line(self) -> float:
        """Core cycles the channel bus is occupied per 64-byte line.

        A DDR channel moves 8 bytes per transfer; a 64-byte line takes 8
        transfers.  At ``mtps`` million transfers/s and a 4 GHz core, one
        transfer takes ``core_freq / mtps`` cycles.
        """
        transfers_per_line = 64 / 8
        cycles_per_transfer = (self.core_freq_ghz * 1000.0) / self.mtps
        return transfers_per_line * cycles_per_transfer


@dataclass(slots=True)
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0            # row open but wrong row (needs PRE+ACT)
    total_read_latency: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.total_read_latency = 0

    @property
    def avg_read_latency(self) -> float:
        if self.reads == 0:
            return 0.0
        return self.total_read_latency / self.reads


@dataclass(slots=True)
class _Bank:
    open_row: int = -1
    busy_until: int = 0


class DRAM:
    """One DRAM channel shared by up to four cores (Table II)."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self._banks: List[_Bank] = [_Bank() for _ in range(self.config.banks)]
        self._bus_free = 0.0
        self._pending_writes: List[int] = []
        self.stats = DRAMStats()
        # Hot-path constants, resolved once (the properties recompute).
        self._lines_per_row = self.config.row_size_bytes // 64
        self._burst = self.config.transfer_cycles_per_line

    # ------------------------------------------------------------------

    def _bank_and_row(self, pline: int) -> tuple[int, int]:
        row = pline // self._lines_per_row
        return row % self.config.banks, row

    def _access(self, pline: int, now: int) -> int:
        """Core timing: returns the completion cycle for one line access.

        Row-buffer hits pipeline at the burst rate (the bank is busy only
        for the data burst, tCAS being pure latency); row misses and
        conflicts additionally occupy the bank for activate/precharge.
        """
        cfg = self.config
        stats = self.stats
        row = pline // self._lines_per_row
        bank = self._banks[row % cfg.banks]

        busy = bank.busy_until
        start = now if now > busy else busy
        open_row = bank.open_row
        if open_row == row:
            stats.row_hits += 1
            prep = 0
        elif open_row == -1:
            stats.row_misses += 1
            prep = cfg.trcd_cycles
        else:
            stats.row_conflicts += 1
            prep = cfg.trp_cycles + cfg.trcd_cycles
        bank.open_row = row

        burst = self._burst
        data_start = start + prep + cfg.tcas_cycles
        bus_free = self._bus_free
        if bus_free > data_start:
            data_start = bus_free
        done = data_start + burst
        self._bus_free = done
        # The bank accepts the next column command once activate/precharge
        # and the data burst are done; CAS latency overlaps with it.
        bank.busy_until = int(start + prep + burst)
        return int(done)

    def read(self, pline: int, now: int) -> int:
        """Issue a read for physical line ``pline`` at cycle ``now``.

        Returns the cycle the data is available at the LLC.  Pending
        writes are drained first when the write queue is over its
        watermark (reads are otherwise prioritised, per Table II).
        """
        cfg = self.config
        if len(self._pending_writes) >= cfg.write_queue * cfg.write_watermark:
            self._drain_writes(now)
        done = self._access(pline, now)
        self.stats.reads += 1
        self.stats.total_read_latency += done - now
        return done

    def write(self, pline: int, now: int) -> None:
        """Enqueue a writeback; drained lazily so reads stay prioritised."""
        self.stats.writes += 1
        self._pending_writes.append(pline)
        if len(self._pending_writes) >= self.config.write_queue:
            self._drain_writes(now)

    def _drain_writes(self, now: int) -> None:
        for pline in self._pending_writes:
            self._access(pline, now)
        self._pending_writes.clear()

    def reset_stats(self) -> None:
        self.stats.reset()

    def reset(self) -> None:
        """Full reset: stats, bank state, queues (between warmup/measure)."""
        self.reset_stats()
        for bank in self._banks:
            bank.open_row = -1
            bank.busy_until = 0
        self._bus_free = 0.0
        self._pending_writes.clear()
