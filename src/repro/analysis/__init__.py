"""Metrics and report helpers shared by examples and benchmarks."""

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    series_chart,
    sparkline,
)
from repro.analysis.metrics import (
    average_accuracy,
    average_mpki,
    geomean,
    geomean_speedup,
    speedups,
    traffic_normalised,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import SweepResult, knob_sweep, sweep

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "sparkline",
    "average_accuracy",
    "average_mpki",
    "geomean",
    "geomean_speedup",
    "speedups",
    "traffic_normalised",
    "format_series",
    "format_table",
    "SweepResult",
    "knob_sweep",
    "sweep",
]
