"""Context ablation: per-IP Berti vs its per-page DPC-3 ancestor, plus
the §V comparisons (VLDP as an extra L2 baseline; Pythia adds <1 % on
top of Berti).

Paper anchors: §I ("inspired by Berti from DPC-3", which was per-page);
§V "with Berti at the L1D, we find negligible performance improvement
with Pythia (less than 1%)".
"""

from common import SCALE, once, run, save_report, spec_traces

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.engine import simulate


def test_context_and_related_work(benchmark):
    def compute():
        traces = spec_traces()
        rows = []
        base = {t.name: run(t, "ip_stride") for t in traces}

        def geo(l1d, l2="none"):
            return geomean([
                run(t, l1d, l2).speedup_over(base[t.name]) for t in traces
            ])

        rows.append(["berti (per-IP)", geo("berti")])
        rows.append(["berti_page (per-page, DPC-3)", geo("berti_page")])
        rows.append(["streamer", geo("streamer")])
        rows.append(["berti + vldp@L2", geo("berti", "vldp")])
        rows.append(["berti + pythia_lite@L2", geo("berti", "pythia_lite")])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "ablation_context",
        format_table(
            ["configuration", "geomean speedup (SPEC17)"], rows,
            title=(
                "Context ablation + related work\n"
                "(paper: the IP beats the page as the delta context;"
                " Pythia on top of Berti adds <1%)"
            ),
        ),
    )

    by = dict(rows)
    # The MICRO paper's thesis: the IP context beats the page context.
    assert by["berti (per-IP)"] >= by["berti_page (per-page, DPC-3)"] - 0.02
    # Pythia on top of Berti adds little (paper: <1%).
    assert abs(by["berti + pythia_lite@L2"] - by["berti (per-IP)"]) < 0.12
