"""Berti: the accurate local-delta L1D prefetcher (paper §III).

Training (§III-A):

* every demand miss and every first demand hit on a prefetched line
  inserts ``(IP, line, timestamp)`` into the history table;
* when the fetch latency of such an access becomes known (on the fill for
  demand misses; immediately for prefetch hits, whose latency was stored
  in the per-line 12-bit field), the history is searched for *timely*
  local deltas, and the result is accumulated in the table of deltas.

Prediction (§III-B):

* on every L1D access the table of deltas is consulted for the IP;
* deltas with ``L1D_PREF`` status prefetch-and-fill to L1D while the L1D
  MSHR is below the 70 % occupancy watermark (they degrade to L2 fills
  above it);
* deltas with ``L2_PREF``/``L2_PREF_REPL`` status fill up to L2;
* prefetch addresses are virtual (current access + delta), so requests
  may cross page boundaries; the engine drops them on STLB misses.
"""

from __future__ import annotations

from typing import List

from repro.core.config import BertiConfig
from repro.core.delta_table import L1D_PREF, DeltaTable
from repro.core.history_table import HistoryTable
from repro.memory.address import same_page
from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    FillInfo,
    Prefetcher,
    PrefetchRequest,
)


class BertiPrefetcher(Prefetcher):
    """The paper's contribution, faithful to the hardware description."""

    name = "berti"
    level = "l1d"
    # Opt into the hierarchy's kernel protocol (see Prefetcher): the
    # on_*_kernel methods below are behaviourally identical to the
    # virtual hooks, minus the per-call AccessInfo/FillInfo/Request
    # allocations.  Subclasses fall back to virtual dispatch unless they
    # re-declare the flag in their own class body.
    kernel_hooks = True
    # Opt into the batched engine's chunk delivery (same own-class-body
    # rule: subclasses demote unless they re-declare it).  The batched
    # engine also reads ``kernel_batch_key`` to compute the training key
    # without a per-access ``_key`` call: "ip" here, "page" for the
    # page-keyed variant.
    kernel_batch_hooks = True
    kernel_batch_key = "ip"

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        self.history = HistoryTable(self.config)
        self.deltas = DeltaTable(self.config)
        self._latency_mask = (1 << self.config.latency_bits) - 1
        # Reusable timely-delta buffer for the kernel fill path (bounded
        # by max_deltas_per_search; record_search does not retain it).
        self._scratch: List[int] = []
        # Statistics for analysis/benchmarks.
        self.cross_page_suppressed = 0

    def _key(self, ip: int, line: int) -> int:
        """Training/prediction context: the IP for this (per-IP) Berti.

        The DPC-3 ancestor used the OS page instead; see
        :class:`BertiPagePrefetcher`.
        """
        return ip

    def __getstate__(self):
        # The timely-delta scratch buffer is transient (rewritten by the
        # next search); the C kernel never touches the Python-side list,
        # so empty it for backend-independent snapshot bytes.
        state = self.__dict__.copy()
        state["_scratch"] = []
        return state

    # ------------------------------------------------------------------
    # Training hooks
    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        if not access.hit:
            # Demand miss: record the access; the timely-delta search runs
            # later, on the fill, when the latency is known.
            self.history.insert(
                self._key(access.ip, access.line), access.line, access.now
            )
        # Prediction runs on *every* L1D access (Figure 5: the table of
        # deltas is searched with the IP on each access).
        return self._predict(access)

    def on_fill(self, fill: FillInfo) -> List[PrefetchRequest]:
        if fill.was_prefetch:
            # Prefetch fills do not train: their demand time is unknown
            # until the core actually touches the line (§III-A).
            return []
        latency = self._clamp_latency(fill.latency)
        if latency == 0:
            return []  # overflow: not considered for learning
        demand_time = fill.now - fill.latency
        key = self._key(fill.ip, fill.line)
        timely = self.history.search_timely(
            key, fill.line, demand_time, latency
        )
        self.deltas.record_search(key, timely)
        return []

    def on_prefetch_hit(self, access: AccessInfo, pf_latency: int) -> None:
        # First demand touch of a prefetched line: this is a miss the
        # baseline would have had, so Berti both records it in the history
        # and searches using the latency the prefetch experienced.
        key = self._key(access.ip, access.line)
        self.history.insert(key, access.line, access.now)
        latency = self._clamp_latency(pf_latency)
        if latency == 0:
            return
        timely = self.history.search_timely(
            key, access.line, access.now, latency
        )
        self.deltas.record_search(key, timely)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _predict(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        selected = self.deltas.prefetch_deltas(self._key(access.ip, line))
        if not selected:
            return []
        cfg = self.config
        mshr_below_watermark = access.mshr_occupancy < cfg.mshr_watermark
        cross_page_ok = cfg.cross_page
        requests: List[PrefetchRequest] = []
        append = requests.append
        for delta, status in selected:
            target = line + delta
            if target < 0:
                continue
            if not cross_page_ok and not same_page(line, target):
                self.cross_page_suppressed += 1
                continue
            if status == L1D_PREF and mshr_below_watermark:
                fill_level = FILL_L1
            else:
                fill_level = FILL_L2
            append(PrefetchRequest(line=target, fill_level=fill_level))
        return requests

    # ------------------------------------------------------------------
    # Kernel protocol (allocation-free mirrors of the hooks above)
    # ------------------------------------------------------------------

    def on_access_kernel(
        self, ip: int, line: int, hit: bool, now: int
    ) -> List:
        """``on_access`` minus the wrappers: insert on miss, then return
        the memoised ``(delta, status)`` selection for the context.

        The hierarchy applies the prediction policy (MSHR watermark,
        cross-page filter, fill levels) inline — callers must not mutate
        the returned list.
        """
        key = self._key(ip, line)
        if not hit:
            self.history.insert(key, line, now)
        return self.deltas.prefetch_deltas(key)

    def on_fill_kernel(self, line: int, now: int, latency: int, ip: int) -> None:
        """``on_fill`` for a demand-miss fill, as one packed update.

        The latency clamp is inlined (the 12-bit field drops overflow)
        and the timely-delta search reuses one scratch buffer instead of
        allocating a result list per fill.
        """
        if latency <= 0 or latency > self._latency_mask:
            return  # overflow: not considered for learning
        key = self._key(ip, line)
        timely = self._scratch
        timely.clear()
        self.history.search_timely_into(key, line, now - latency, latency, timely)
        self.deltas.record_search(key, timely)

    def on_prefetch_hit_kernel(
        self, ip: int, line: int, now: int, pf_latency: int
    ) -> None:
        """``on_prefetch_hit`` as one packed update (see on_fill_kernel)."""
        key = self._key(ip, line)
        self.history.insert(key, line, now)
        if pf_latency <= 0 or pf_latency > self._latency_mask:
            return
        timely = self._scratch
        timely.clear()
        self.history.search_timely_into(key, line, now, pf_latency, timely)
        self.deltas.record_search(key, timely)

    # ------------------------------------------------------------------
    # Batch protocol (chunk-at-a-time mirrors, see repro.simulator.batched)
    # ------------------------------------------------------------------

    def on_access_batch(self, triples) -> None:
        """Observe one chunk's training stream: ``(ip, vline, cycle)``
        per history insert (demand misses and prefetch first-hits).

        The batched engine has already fed every insert through the
        per-access kernels by the time the chunk boundary delivers the
        batch, so this hook MUST NOT mutate prefetcher state — snapshots
        taken after a chunk are byte-identical whether or not it ran.
        Subclasses may override it for batch-level analyses as long as
        they preserve that contract (or drop ``kernel_batch_hooks`` from
        their class body to demote to per-access dispatch).
        """

    def on_fill_batch(self, fills) -> None:
        """Batch twin of :meth:`on_fill_kernel` over ``(line, now,
        latency, ip)`` tuples.

        Fill training feeds the very next access's prediction, so the
        engine resolves fills per access and never calls this; it exists
        for offline/replay tooling and is pinned equivalent to the
        per-access kernel by test.
        """
        on_fill = self.on_fill_kernel
        for line, now, latency, ip in fills:
            on_fill(line, now, latency, ip)

    # ------------------------------------------------------------------

    def _clamp_latency(self, latency: int) -> int:
        """The 12-bit latency field: out-of-range values store zero."""
        if latency <= 0 or latency > self._latency_mask:
            return 0
        return latency

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    def reset(self) -> None:
        self.history.reset()
        self.deltas.reset()
        self.cross_page_suppressed = 0
