"""Unit tests for address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import address as addr


class TestLineHelpers:
    def test_line_of_zero(self):
        assert addr.line_of(0) == 0

    def test_line_of_within_first_line(self):
        assert addr.line_of(63) == 0

    def test_line_of_boundary(self):
        assert addr.line_of(64) == 1

    def test_line_addr_roundtrip(self):
        assert addr.line_addr(addr.line_of(0x12345)) == 0x12340

    def test_line_addr_is_aligned(self):
        assert addr.line_addr(7) % addr.LINE_SIZE == 0


class TestPageHelpers:
    def test_page_of_boundary(self):
        assert addr.page_of(4095) == 0
        assert addr.page_of(4096) == 1

    def test_lines_per_page(self):
        assert addr.LINES_PER_PAGE == 64

    def test_page_of_line(self):
        assert addr.page_of_line(63) == 0
        assert addr.page_of_line(64) == 1

    def test_line_offset_in_page(self):
        assert addr.line_offset_in_page(0) == 0
        assert addr.line_offset_in_page(65) == 1

    def test_same_page_true(self):
        assert addr.same_page(0, 63)

    def test_same_page_false(self):
        assert not addr.same_page(63, 64)

    def test_page_addr(self):
        assert addr.page_addr(2) == 8192


class TestSignExtend:
    def test_positive_small(self):
        assert addr.sign_extend(5, 13) == 5

    def test_negative(self):
        assert addr.sign_extend((1 << 13) - 1, 13) == -1

    def test_max_positive(self):
        assert addr.sign_extend((1 << 12) - 1, 13) == (1 << 12) - 1

    def test_min_negative(self):
        assert addr.sign_extend(1 << 12, 13) == -(1 << 12)

    def test_masks_upper_bits(self):
        assert addr.sign_extend(0xFFFF0005, 13) == 5

    @given(st.integers(min_value=-(1 << 12), max_value=(1 << 12) - 1))
    def test_roundtrip_13bit(self, value):
        assert addr.sign_extend(value & 0x1FFF, 13) == value


class TestFitsInSigned:
    def test_bounds(self):
        assert addr.fits_in_signed(-4096, 13)
        assert addr.fits_in_signed(4095, 13)
        assert not addr.fits_in_signed(4096, 13)
        assert not addr.fits_in_signed(-4097, 13)

    @given(st.integers(min_value=2, max_value=24), st.integers())
    def test_consistent_with_sign_extend(self, bits, value):
        if addr.fits_in_signed(value, bits):
            assert addr.sign_extend(value & ((1 << bits) - 1), bits) == value
