"""Tests for the multi-host worker fleet (PR 8, ``repro.fleet``).

Unit-level coverage of the fleet pieces — the deterministic
fault-injecting transport, the typed error branch, the defensive
Retry-After handling in the client, the daemon-side agent registry and
manifest — plus the daemon's agent endpoints driven with injected
clocks and run functions, WAL replay with interleaved multi-agent
epochs, and one live end-to-end agent over real HTTP.  Whole-system
network-failure behaviour (partitions, SIGKILL, duplicate delivery,
poisoned trace stores) lives in the chaos harness (``repro chaos``).
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.errors import (
    AgentLost,
    DigestMismatch,
    FleetError,
    ServiceError,
    TransportError,
)
from repro.fleet import (
    AgentRegistry,
    FaultPlan,
    FaultyTransport,
    FleetAgent,
    FleetManifest,
)
from repro.fleet.transport import parse_retry_after
from repro.runner.jobs import JobSpec
from repro.service import CampaignService, ServiceClient, ServiceConfig
from repro.service.client import _sanitize_retry_after
from repro.service.daemon import (
    job_content_key,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.wal import ServiceWAL

TRACE = "lbm_s-2676B"
TRACE2 = "mcf_s-1554B"

SPECS = [JobSpec(trace=TRACE, l1d="none", scale=0.03),
         JobSpec(trace=TRACE2, l1d="berti", scale=0.03)]


# ----------------------------------------------------------------------
# Test doubles
# ----------------------------------------------------------------------


class FakeClock:
    """Injected monotonic clock: time moves only when told to."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class FakeInner:
    """Recording transport double under the fault injector."""

    def __init__(self, response=(200, None, {"ok": True})):
        self.sent = []
        self.response = response

    def send(self, method, path, payload=None):
        self.sent.append((method, path, payload))
        return self.response


def fake_run(spec: JobSpec, attempt: int = 1) -> dict:
    return {"trace": spec.trace, "l1d": spec.l1d, "attempt_seen": attempt}


def make_service(tmp_path, run_fn=fake_run, clock=None, **overrides):
    cfg = dict(state_dir=tmp_path / "state", workers=1,
               lease_duration=30.0, lease_poll=0.05)
    cfg.update(overrides)
    return CampaignService(ServiceConfig(**cfg),
                           now_fn=clock or FakeClock(), run_fn=run_fn)


def submit_specs(service, specs):
    return service.submit({"jobs": [spec_to_dict(s) for s in specs]})


def register(service, name="a1"):
    return service.agent_register(
        {"name": name, "host": "testhost", "pool": 1})["agent"]


def deliver(service, agent_id, entry, status="ok", result=None, error=None):
    payload = {"lease_id": entry["lease_id"],
               "content_key": entry["content_key"],
               "attempt": entry["attempt"], "status": status}
    if status == "ok":
        payload["result"] = result or fake_run(
            spec_from_dict(entry["spec"]), entry["attempt"])
    if error is not None:
        payload["error"] = error
    return service.agent_result(agent_id, payload)


# ----------------------------------------------------------------------
# Retry-After: defensive parsing at both layers (satellite: client fix)
# ----------------------------------------------------------------------


class TestRetryAfterDefense:
    @pytest.mark.parametrize("raw,expected", [
        ("0.5", 0.5), (" 2 ", 2.0), (0, 0.0), (3, 3.0),
        (None, None), ("soon", None), ("", None),
        ("nan", None), ("inf", None), ("-inf", None), (-5, 0.0),
    ])
    def test_transport_header_parse(self, raw, expected):
        assert parse_retry_after(raw) == expected

    @pytest.mark.parametrize("raw", [
        None, "soon", "", "nan", "inf", "-inf", -1, -0.001, 1e9, 3601,
        object(),
    ])
    def test_client_rejects_unusable_hints(self, raw):
        assert _sanitize_retry_after(raw) is None

    @pytest.mark.parametrize("raw,expected", [
        (0.2, 0.2), ("1.5", 1.5), (0, 0.0), (3600, 3600.0),
    ])
    def test_client_accepts_sane_hints(self, raw, expected):
        assert _sanitize_retry_after(raw) == expected

    def _client(self, sleeps):
        return ServiceClient("h", 1, retries=2, backoff_base=0.1,
                             jitter_seed=0, sleep_fn=sleeps.append)

    def test_sane_retry_after_wins_over_backoff(self, tmp_path):
        sleeps = []
        client = self._client(sleeps)
        script = iter([(429, 0.2, {"message": "busy"}),
                       (200, None, {"done": True})])
        client._once = lambda *a: next(script)
        assert client.request("GET", "/v1/healthz") == {"done": True}
        assert sleeps == [0.2]

    @pytest.mark.parametrize("bad", ["soon", "nan", -3, 1e9, None])
    def test_malformed_retry_after_falls_back_to_backoff(self, bad):
        """The pinned regression: a garbage header must neither crash
        the retry loop nor park the client; the computed jittered
        backoff is used instead."""
        sleeps = []
        client = self._client(sleeps)
        script = iter([(503, bad, {"message": "flaky"}),
                       (200, None, {"done": True})])
        client._once = lambda *a: next(script)
        assert client.request("GET", "/v1/healthz") == {"done": True}
        assert len(sleeps) == 1
        # jitter in [0.5x, 1.5x) of base * 2^0
        assert 0.05 <= sleeps[0] < 0.15


# ----------------------------------------------------------------------
# Typed errors (satellite: FleetError branch)
# ----------------------------------------------------------------------


class TestFleetErrors:
    def test_hierarchy_and_retryability(self):
        assert issubclass(FleetError, ServiceError)
        for cls in (TransportError, AgentLost, DigestMismatch):
            assert issubclass(cls, FleetError)
        assert TransportError("x").retryable
        assert AgentLost("x").retryable
        assert not DigestMismatch("x").retryable

    def test_agent_tag_renders_and_pickles(self):
        exc = FleetError("agent went dark", status=410, agent="A7")
        assert "A7" in str(exc)
        assert exc.status == 410
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.agent == "A7"
        assert clone.status == 410
        assert str(clone) == str(exc)

    def test_digest_mismatch_is_conflict(self):
        exc = DigestMismatch("bytes drifted", trace=TRACE, agent="A1")
        assert exc.status == 409
        assert exc.trace == TRACE

    def test_transport_wraps_raw_network_errors(self):
        from repro.fleet.transport import HTTPTransport

        transport = HTTPTransport("127.0.0.1", 1, timeout=0.2)
        with pytest.raises(TransportError):
            transport.send("GET", "/v1/healthz")


# ----------------------------------------------------------------------
# FaultyTransport: deterministic network fire
# ----------------------------------------------------------------------


class TestFaultyTransport:
    def test_clean_passthrough(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner)
        assert faulty.send("GET", "/x") == (200, None, {"ok": True})
        assert faulty.stats.sent == faulty.stats.delivered == 1

    def test_drop_request_never_reaches_inner(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(drop_requests=(1,)))
        with pytest.raises(TransportError):
            faulty.send("GET", "/x")
        assert inner.sent == []
        assert faulty.send("GET", "/x")[0] == 200
        assert faulty.stats.dropped_requests == 1

    def test_drop_response_after_delivery(self):
        """The at-least-once hazard: the server acted, the client saw
        an error — exactly what forces idempotent result recording."""
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(drop_responses=(1,)))
        with pytest.raises(TransportError):
            faulty.send("POST", "/x", {"n": 1})
        assert len(inner.sent) == 1
        assert faulty.stats.dropped_responses == 1

    def test_duplicate_delivers_twice(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(duplicates=(1,)))
        assert faulty.send("POST", "/x", {"n": 1})[0] == 200
        assert len(inner.sent) == 2
        assert faulty.stats.duplicated == 1

    def test_reorder_redelivers_stale_copy_before_next_send(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(reorders=(1,)))
        faulty.send("POST", "/a", {"n": 1})
        assert len(inner.sent) == 1
        faulty.send("POST", "/b", {"n": 2})
        assert [s[1] for s in inner.sent] == ["/a", "/a", "/b"]
        assert faulty.stats.reordered == 1

    def test_path_selectors_match_substring(self):
        inner = FakeInner()
        faulty = FaultyTransport(
            inner, FaultPlan(duplicate_paths=("/result",)))
        faulty.send("POST", "/v1/agents/A1/result", {})
        faulty.send("POST", "/v1/agents/A1/lease", {})
        assert faulty.stats.duplicated == 1
        assert len(inner.sent) == 3

    def test_partition_toggle_and_window(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(partitions=((2, 4),)))
        assert faulty.send("GET", "/x")[0] == 200       # n=1
        for _ in range(2):                              # n=2, n=3
            with pytest.raises(TransportError):
                faulty.send("GET", "/x")
        assert faulty.send("GET", "/x")[0] == 200       # n=4
        faulty.set_partitioned(True)
        with pytest.raises(TransportError):
            faulty.send("GET", "/x")
        faulty.set_partitioned(False)
        assert faulty.send("GET", "/x")[0] == 200
        assert faulty.stats.partitioned == 3

    def test_block_paths_gate_until_unblocked(self):
        inner = FakeInner()
        faulty = FaultyTransport(inner, FaultPlan(block_paths=("/lease",)))
        with pytest.raises(TransportError):
            faulty.send("POST", "/v1/agents/A1/lease", {})
        assert faulty.send("POST", "/v1/agents/A1/renew", {})[0] == 200
        faulty.unblock("/lease")
        assert faulty.send("POST", "/v1/agents/A1/lease", {})[0] == 200

    def test_seeded_rates_replay_identically(self):
        def fates(seed):
            inner = FakeInner()
            faulty = FaultyTransport(
                inner, FaultPlan(seed=seed, drop_rate=0.4))
            out = []
            for _ in range(32):
                try:
                    faulty.send("GET", "/x")
                    out.append("ok")
                except TransportError:
                    out.append("drop")
            return out

        assert fates(7) == fates(7)
        assert fates(7) != fates(8)

    def test_delay_sleeps_deterministically(self):
        slept = []
        inner = FakeInner()
        faulty = FaultyTransport(
            inner, FaultPlan(seed=3, delay=0.01, delay_jitter=0.02),
            sleep_fn=slept.append)
        for _ in range(8):
            faulty.send("GET", "/x")
        assert len(slept) == 8
        assert all(0.01 <= s < 0.03 for s in slept)


# ----------------------------------------------------------------------
# AgentRegistry: lifecycle state machine + breaker
# ----------------------------------------------------------------------


class TestAgentRegistry:
    def registry(self, clock=None, **kw):
        return AgentRegistry(timeout=10.0, clock=clock or FakeClock(), **kw)

    def test_register_touch_activate(self):
        reg = self.registry()
        rec = reg.register(name="n", host="h", pool=2)
        assert rec.agent_id == "A1" and rec.state == "registered"
        assert rec.leasable
        reg.activate(rec.agent_id)
        assert reg.get(rec.agent_id).state == "active"

    def test_unknown_agent_is_410(self):
        reg = self.registry()
        with pytest.raises(FleetError) as err:
            reg.touch("A99")
        assert err.value.status == 410
        with pytest.raises(FleetError):
            reg.drain("A99")

    def test_stale_agent_reaped_then_rejoins(self):
        clock = FakeClock()
        reg = self.registry(clock=clock)
        rec = reg.register()
        assert reg.reap_stale() == []
        clock.advance(10.1)
        dead = reg.reap_stale()
        assert [r.agent_id for r in dead] == [rec.agent_id]
        assert rec.state == "dead" and rec.deaths == 1
        assert not rec.live and not rec.leasable
        reg.touch(rec.agent_id)
        assert rec.state == "active" and rec.rejoins == 1

    def test_drain_lifecycle(self):
        reg = self.registry()
        rec = reg.register()
        reg.drain(rec.agent_id)
        assert rec.state == "draining"
        assert rec.live and not rec.leasable
        reg.mark_drained(rec.agent_id)
        assert rec.state == "drained" and not rec.live

    def test_breaker_trips_after_consecutive_failures(self):
        reg = self.registry(breaker_after=3)
        rec = reg.register()
        reg.activate(rec.agent_id)
        assert reg.record_result(rec.agent_id, "failed") is None
        assert reg.record_result(rec.agent_id, "ok") is None  # resets
        for _ in range(2):
            assert reg.record_result(rec.agent_id, "failed") is None
        assert reg.record_result(rec.agent_id, "refused") == "quarantined"
        assert rec.state == "quarantined" and not rec.leasable
        reg.reset_breaker(rec.agent_id)
        assert rec.state == "active" and rec.consecutive_failures == 0


# ----------------------------------------------------------------------
# FleetManifest: durable degraded windows
# ----------------------------------------------------------------------


class TestFleetManifest:
    def test_events_and_windows(self, tmp_path):
        clock = FakeClock()
        manifest = FleetManifest(tmp_path / "m.json", clock=clock)
        manifest.record("agent-registered", agent="A1")
        manifest.enter_degraded("zero agents")
        manifest.enter_degraded("zero agents")  # idempotent
        assert manifest.degraded
        clock.advance(5.0)
        assert manifest.exit_degraded() == pytest.approx(5.0)
        assert not manifest.degraded
        windows = manifest.degraded_windows()
        assert len(windows) == 1
        assert windows[0]["end"] - windows[0]["start"] == pytest.approx(5.0)
        assert windows[0]["recovered"] is True
        kinds = [e["event"] for e in manifest.events()]
        assert kinds == ["agent-registered", "degraded-enter",
                        "degraded-exit"]

    def test_open_window_survives_reload_unrecovered(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = FleetManifest(path, clock=FakeClock())
        manifest.enter_degraded("zero agents")
        reloaded = FleetManifest(path, clock=FakeClock())
        windows = reloaded.degraded_windows()
        assert len(windows) == 1
        assert windows[0]["recovered"] is False

    def test_torn_file_tolerated(self, tmp_path):
        # Beyond-recovery garbage: the manifest stays usable and the
        # loss is recorded as an event instead of silently discarded.
        path = tmp_path / "m.json"
        path.write_text("{torn", encoding="utf-8")
        manifest = FleetManifest(path, clock=FakeClock())
        kinds = [e["event"] for e in manifest.events()]
        assert kinds == ["manifest-unrecoverable"]
        manifest.record("agent-registered", agent="A1")
        assert [e["event"] for e in manifest.events()] == [
            "manifest-unrecoverable", "agent-registered"]

    def test_torn_tail_healed_to_prefix(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = FleetManifest(path, clock=FakeClock())
        for i in range(5):
            manifest.record(f"event-{i}")
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[:len(raw) // 2], encoding="utf-8")
        reloaded = FleetManifest(path, clock=FakeClock())
        kinds = [e["event"] for e in reloaded.events()]
        assert kinds[-1] == "manifest-healed"
        recovered = [k for k in kinds if k.startswith("event-")]
        assert recovered == [f"event-{i}" for i in range(len(recovered))]


# ----------------------------------------------------------------------
# Daemon agent endpoints (injected clock, no threads)
# ----------------------------------------------------------------------


class TestDaemonFleet:
    def test_register_lease_result_roundtrip(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, SPECS)
        aid = register(service)
        resp = service.agent_lease(aid, {"max": 2})
        assert len(resp["leases"]) == 2
        for entry in resp["leases"]:
            assert entry["trace_digest"].startswith("catalog:")
            out = deliver(service, aid, entry)
            assert out["recorded"] is True and out["duplicate"] is False
        record = service.fleet.get(aid)
        assert record.results_ok == 2 and record.state == "active"
        keys = [job_content_key(s) for s in SPECS]
        assert all(service._jobs[k].status == "done" for k in keys)

    def test_live_agent_blocks_local_pool(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, [SPECS[0]])
        register(service)
        assert service._fleet_blocks_local()
        # the job stays queued for the agent; local workers stand down
        key = job_content_key(SPECS[0])
        assert service._jobs[key].status == "pending"

    def test_duplicate_delivery_drops_late(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, [SPECS[0]])
        aid = register(service)
        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        first = deliver(service, aid, entry)
        second = deliver(service, aid, entry)
        assert first["recorded"] and not second["recorded"]
        assert second["duplicate"] is True
        lineage = service.leases.lineage(entry["content_key"])
        assert [e["event"] for e in lineage] == ["grant", "ok",
                                                 "late-result"]
        assert service.fleet.get(aid).results_ok == 1

    def test_unknown_agent_answers_410(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(FleetError) as err:
            service.agent_lease("A99", {"max": 1})
        assert err.value.status == 410

    def test_refusal_burns_requeue_budget(self, tmp_path):
        service = make_service(tmp_path, max_requeues=1)
        submit_specs(service, [SPECS[0]])
        aid = register(service)
        key = job_content_key(SPECS[0])
        error = {"error_type": "DigestMismatch", "kind": "trace",
                 "message": "bytes drifted"}

        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        out = deliver(service, aid, entry, status="refused", error=error)
        assert out["recorded"] is True
        assert service._jobs[key].status == "pending"  # requeued once

        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        assert entry["attempt"] == 2
        deliver(service, aid, entry, status="refused", error=error)
        assert service._jobs[key].status == "failed"   # budget exhausted
        refused = [r for r in ServiceWAL(
            service.state_dir / "service.wal").replay()
            if r.get("type") == "refused"]
        assert [r["requeued"] for r in refused] == [True, False]
        assert all(r["agent"] == aid for r in refused)
        assert service.fleet.get(aid).results_refused == 2

    def test_dead_agent_leases_requeue_and_degrade(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock, lease_duration=5.0)
        submit_specs(service, [SPECS[0]])
        aid = register(service)
        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        key = entry["content_key"]

        clock.advance(3.0)
        renew = service.agent_renew(aid, {"leases": [entry["lease_id"]]})
        assert renew["ok"] == [entry["lease_id"]]

        clock.advance(5.1)  # past both lease expiry and agent timeout
        service._monitor_tick(clock())
        assert service.fleet.get(aid).state == "dead"
        assert service._jobs[key].status == "pending"
        assert service.fleet_status()["degraded"] is True
        expiry = [r for r in ServiceWAL(
            service.state_dir / "service.wal").replay()
            if r.get("type") == "lease-expired"]
        assert len(expiry) == 1
        assert expiry[0]["agent"] == aid
        assert expiry[0]["reason"] == "agent lost"

        # Rejoin: next contact revives the agent and ends degradation.
        resp = service.agent_lease(aid, {"max": 1})
        assert len(resp["leases"]) == 1  # the requeued job, attempt 2
        assert resp["leases"][0]["attempt"] == 2
        assert service.fleet.get(aid).rejoins == 1
        assert service.fleet_status()["degraded"] is False
        events = [e["event"] for e in service.manifest.events()]
        for needed in ("agent-dead", "agent-requeue", "degraded-enter",
                       "agent-rejoined", "degraded-exit"):
            assert needed in events, events

    def test_renew_reports_lost_leases(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock, lease_duration=5.0,
                               agent_timeout=60.0)
        submit_specs(service, [SPECS[0]])
        aid = register(service)
        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        clock.advance(5.1)  # lease expires; agent itself is not stale
        service._monitor_tick(clock())
        renew = service.agent_renew(aid, {"leases": [entry["lease_id"]]})
        assert renew["lost"] == [entry["lease_id"]]
        assert renew["ok"] == []

    def test_quarantined_agent_is_refused_leases(self, tmp_path):
        service = make_service(tmp_path, agent_quarantine_after=1)
        submit_specs(service, SPECS)
        aid = register(service)
        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        deliver(service, aid, entry, status="failed",
                error={"error_type": "RuntimeError", "kind": "crash",
                       "message": "boom"})
        assert service.fleet.get(aid).state == "quarantined"
        assert "agent-quarantined" in [
            e["event"] for e in service.manifest.events()]
        assert service.agent_lease(aid, {"max": 1})["leases"] == []
        # quarantined != leasable: the local pool takes over
        assert not service._fleet_blocks_local()

    def test_drain_completes_when_no_leases_in_flight(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, [SPECS[0]])
        aid = register(service)
        entry = service.agent_lease(aid, {"max": 1})["leases"][0]
        assert service.agent_drain(aid)["state"] == "draining"
        assert service.agent_lease(aid, {"max": 1})["leases"] == []
        deliver(service, aid, entry)  # last in-flight result lands
        assert service.fleet.get(aid).state == "drained"

    def test_healthz_and_fleet_status_expose_fleet(self, tmp_path):
        service = make_service(tmp_path)
        health = service.healthz()
        assert health["fleet"] == {"agents": 0, "engaged": False,
                                   "degraded": False}
        aid = register(service)
        assert service.healthz()["fleet"]["agents"] == 1
        fleet = service.fleet_status()
        assert fleet["engaged"] is True
        assert [a["agent"] for a in fleet["agents"]] == [aid]


# ----------------------------------------------------------------------
# WAL replay with interleaved multi-agent epochs (satellite)
# ----------------------------------------------------------------------


class TestMultiAgentReplay:
    def test_replay_reconstructs_both_lease_lineages(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        a1, a2 = register(service, "a1"), register(service, "a2")
        e1 = service.agent_lease(a1, {"max": 1})["leases"][0]
        e2 = service.agent_lease(a2, {"max": 1})["leases"][0]
        assert {e1["content_key"]} != {e2["content_key"]}
        deliver(service, a1, e1)           # a1 finishes its job
        service.wal.close()                # a2's lease dies with epoch 1

        revived = make_service(tmp_path)
        assert revived.epoch == 2
        done_key, open_key = e1["content_key"], e2["content_key"]
        assert revived._jobs[done_key].status == "done"
        assert revived._jobs[open_key].status == "pending"

        # Only the dead epoch's *open* lease was orphaned — exactly one.
        orphans = [r for r in ServiceWAL(
            revived.state_dir / "service.wal").replay()
            if r.get("type") == "lease-expired"
            and r.get("reason") == "daemon epoch lost"]
        assert len(orphans) == 1
        assert orphans[0]["agent"] == a2
        assert orphans[0]["content_key"] == open_key
        assert orphans[0]["requeued"] is True

        # Both lineages reconstructed, each attributed to its agent.
        line1 = revived.leases.lineage(done_key)
        assert [e["event"] for e in line1] == ["grant", "ok"]
        assert line1[0]["agent"] == a1
        line2 = revived.leases.lineage(open_key)
        assert [e["event"] for e in line2] == ["grant", "expired"]
        assert line2[0]["agent"] == a2
        assert line2[1]["reason"] == "daemon epoch lost"

        # The registry died with the old epoch: old ids answer 410 and
        # the agents re-register, then the campaign finishes.
        with pytest.raises(FleetError) as err:
            revived.agent_lease(a2, {"max": 1})
        assert err.value.status == 410
        a2b = register(revived, "a2")
        entry = revived.agent_lease(a2b, {"max": 1})["leases"][0]
        assert entry["content_key"] == open_key
        assert entry["attempt"] == 2
        deliver(revived, a2b, entry)
        assert revived.results(resp["campaign"])["state"] == "done"

    def test_requeue_budget_survives_restart(self, tmp_path):
        """An orphaned lease's expiry must still count against the
        budget after replay — epochs cannot launder requeue credits."""
        service = make_service(tmp_path, max_requeues=1)
        submit_specs(service, [SPECS[0]])
        a1 = register(service)
        service.agent_lease(a1, {"max": 1})
        service.wal.close()                 # expiry #1 (epoch lost)

        revived = make_service(tmp_path, max_requeues=1)
        key = job_content_key(SPECS[0])
        assert revived._jobs[key].status == "pending"
        assert revived.leases.may_requeue(key) is True
        a1b = register(revived)
        entry = revived.agent_lease(a1b, {"max": 1})["leases"][0]
        revived.wal.close()                 # expiry #2: budget exhausted

        final = make_service(tmp_path, max_requeues=1)
        assert final.leases.may_requeue(key) is False
        assert entry["attempt"] == 2


# ----------------------------------------------------------------------
# FleetAgent: digest verification + live end-to-end
# ----------------------------------------------------------------------


class TestFleetAgent:
    def test_verify_digest_refuses_drifted_bytes(self, tmp_path):
        from repro.memory.tracestore import file_digest

        path = tmp_path / "t.trc"
        path.write_bytes(b"store bytes v1")
        promised = file_digest(path)
        agent = FleetAgent.__new__(FleetAgent)  # no network needed
        agent.agent_id = "A1"
        spec = JobSpec(trace=TRACE, l1d="none", scale=0.03,
                       trace_path=str(path))
        agent._verify_digest(spec, promised)    # matching bytes pass
        path.write_bytes(b"store bytes v2")
        with pytest.raises(DigestMismatch):
            agent._verify_digest(spec, promised)
        # catalog identities have nothing on disk to verify
        agent._verify_digest(spec, "catalog:xyz")

    def test_live_agent_runs_campaign_end_to_end(self, tmp_path):
        service = make_service(tmp_path, clock=None)
        service.start()
        agent = None
        try:
            host, port = service.address
            agent = FleetAgent(host, port, pool=2, name="t",
                               run_fn=fake_run, poll=0.02, retries=2,
                               backoff_base=0.02, jitter_seed=0)
            agent.start()
            resp = submit_specs(service, SPECS)
            client = ServiceClient(host, port, retries=3, jitter_seed=0)
            status = client.poll(resp["campaign"], interval=0.05,
                                 timeout=30.0)
            assert status["state"] == "done"
            # the agent (not the local pool) did the work
            record = service.fleet.get(agent.agent_id)
            assert record.results_ok == len(SPECS)
            # the daemon counts a result the moment it lands; the agent
            # bumps jobs_done only after its POST returns, so give the
            # worker threads a beat to catch up
            deadline = time.monotonic() + 5.0
            while agent.jobs_done < len(SPECS) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert agent.jobs_done == len(SPECS)
            results = client.results(resp["campaign"])
            assert all(r["status"] == "ok" for r in results["results"])
        finally:
            if agent is not None:
                agent.stop()
            service.stop()
