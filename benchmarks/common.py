"""Shared infrastructure for the per-figure benchmark harness.

Many figures are different views of the same simulations (e.g. Figures 8,
10, 11, 14 and 15 all read the single-core L1D-prefetcher matrix), so runs
are memoised in-process and on disk under ``benchmarks/.cache``.

Scale: ``REPRO_BENCH_SCALE`` (default 0.5) multiplies trace lengths.  The
paper simulates 200 M instructions per trace; these benches run minutes,
not days, so absolute numbers differ — every bench prints the paper's
reference values next to the measured ones for shape comparison.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.prefetchers.registry import make_prefetcher
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import simulate
from repro.simulator.multicore import simulate_multicore
from repro.simulator.stats import SimResult
from repro.workloads.cloudsuite_like import cloudsuite_suite
from repro.workloads.gap import gap_suite
from repro.workloads.spec_like import spec17_suite
from repro.workloads.trace import Trace

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"

_memory_cache: Dict[str, object] = {}
_trace_cache: Dict[str, List[Trace]] = {}

L1D_SET = ["none", "ip_stride", "mlop", "ipcp", "berti"]
MULTILEVEL_SET = [
    ("mlop", "bingo"),
    ("mlop", "spp_ppf"),
    ("ipcp", "ipcp_l2"),
    ("berti", "bingo"),
    ("berti", "spp_ppf"),
]


def spec_traces() -> List[Trace]:
    if "spec" not in _trace_cache:
        _trace_cache["spec"] = spec17_suite(SCALE)
    return _trace_cache["spec"]


def gap_traces() -> List[Trace]:
    if "gap" not in _trace_cache:
        # 5 kernels x 2 graphs keeps the harness tractable; set
        # REPRO_BENCH_GRAPHS=all for the full 5x4 grid.
        graphs = (
            None if os.environ.get("REPRO_BENCH_GRAPHS") == "all"
            else ["kron", "urand"]
        )
        _trace_cache["gap"] = gap_suite(SCALE, graphs=graphs)
    return _trace_cache["gap"]


def cloudsuite_traces() -> List[Trace]:
    if "cs" not in _trace_cache:
        _trace_cache["cs"] = cloudsuite_suite(SCALE)
    return _trace_cache["cs"]


def all_memint_traces() -> List[Trace]:
    return spec_traces() + gap_traces()


def _cache_key(trace: Trace, l1d: str, l2: str, tag: str) -> str:
    return f"{trace.name}__{l1d}__{l2}__{tag}__s{SCALE}__n{len(trace)}"


def run(
    trace: Trace,
    l1d: str = "none",
    l2: str = "none",
    config: Optional[SystemConfig] = None,
    tag: str = "base",
) -> SimResult:
    """Simulate (or fetch from cache) one configuration of one trace."""
    key = _cache_key(trace, l1d, l2, tag)
    if key in _memory_cache:
        return _memory_cache[key]  # type: ignore[return-value]
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / (key + ".pkl")
    if path.exists():
        with path.open("rb") as fh:
            result = pickle.load(fh)
    else:
        result = simulate(
            trace,
            l1d_prefetcher=make_prefetcher(l1d),
            l2_prefetcher=make_prefetcher(l2),
            config=config or default_config(),
        )
        with path.open("wb") as fh:
            pickle.dump(result, fh)
    _memory_cache[key] = result
    return result


def run_matrix(
    traces: Sequence[Trace],
    l1d_names: Sequence[str],
    l2: str = "none",
    config: Optional[SystemConfig] = None,
    tag: str = "base",
) -> Dict[str, Dict[str, SimResult]]:
    """trace name -> prefetcher name -> result."""
    out: Dict[str, Dict[str, SimResult]] = {}
    for trace in traces:
        out[trace.name] = {
            name: run(trace, name, l2, config, tag) for name in l1d_names
        }
    return out


def run_multilevel(
    traces: Sequence[Trace],
    combos: Sequence[Tuple[str, str]],
    config: Optional[SystemConfig] = None,
    tag: str = "base",
) -> Dict[str, Dict[str, SimResult]]:
    out: Dict[str, Dict[str, SimResult]] = {}
    for trace in traces:
        row: Dict[str, SimResult] = {}
        for l1d, l2 in combos:
            row[f"{l1d}+{l2}"] = run(trace, l1d, l2, config, tag)
        out[trace.name] = row
    return out


def save_report(name: str, text: str) -> None:
    """Print the report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
