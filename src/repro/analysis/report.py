"""ASCII report tables for the benchmark harness.

Every bench regenerates its figure/table as text; these helpers keep the
formatting consistent (and readable in CI logs).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    floatfmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str, series: Mapping[str, Mapping[str, float]], floatfmt: str = "{:.3f}"
) -> str:
    """Render {series -> {x -> y}} as a table with one row per series."""
    xs: List[str] = []
    for ys in series.values():
        for x in ys:
            if x not in xs:
                xs.append(x)
    headers = ["series"] + list(xs)
    rows = []
    for name, ys in series.items():
        rows.append([name] + [ys.get(x, float("nan")) for x in xs])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)
