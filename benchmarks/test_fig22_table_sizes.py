"""Figure 22: sensitivity to the size of the Berti tables.

Paper reference: quartering the table of deltas loses ~12 %, quartering
the number of deltas per entry only ~1.2 %; doubling/quadrupling the
tables gains almost nothing (CactuBSSN being the exception that needs
1024-entry tables).
"""

from dataclasses import replace

from common import SCALE, once, save_report

from repro.analysis.metrics import geomean
from repro.analysis.report import format_series
from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.engine import simulate
from repro.workloads.gap import gap_suite
from repro.workloads.spec_like import spec17_suite

FACTORS = [0.25, 0.5, 1.0, 2.0, 4.0]


def test_fig22_table_size_sweep(benchmark):
    def compute():
        traces = spec17_suite(SCALE * 0.6) + gap_suite(
            SCALE * 0.6, graphs=["kron"], kernels=["pr", "sssp", "bc"]
        )
        bases = {
            t.name: simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
            for t in traces
        }

        def sweep(make_cfg):
            out = {}
            for f in FACTORS:
                cfg = make_cfg(f)
                ratios = [
                    simulate(t, l1d_prefetcher=BertiPrefetcher(cfg))
                    .speedup_over(bases[t.name])
                    for t in traces
                ]
                out[f"{f}x"] = geomean(ratios)
            return out

        base_cfg = BertiConfig()
        return {
            "history_table": sweep(
                lambda f: replace(
                    base_cfg,
                    history_sets=max(1, int(base_cfg.history_sets * f)),
                )
            ),
            "table_of_deltas": sweep(
                lambda f: replace(
                    base_cfg,
                    delta_table_entries=max(
                        1, int(base_cfg.delta_table_entries * f)
                    ),
                )
            ),
            "num_deltas": sweep(
                lambda f: base_cfg.with_deltas_per_entry(
                    max(1, int(base_cfg.deltas_per_entry * f))
                )
            ),
        }

    series = once(benchmark, compute)
    save_report(
        "fig22_table_sizes",
        format_series(
            "Figure 22 — speedup vs Berti table sizes (vs IP-stride)\n"
            "(paper: shrinking the table of deltas hurts most; growing"
            " tables gains little)",
            series,
        ),
    )

    # Shrinking any structure to 0.25x loses performance.
    for key in ("history_table", "table_of_deltas", "num_deltas"):
        assert series[key]["0.25x"] <= series[key]["1.0x"] + 0.01, key
    # The binding constraint is a *table capacity* (history table or
    # table of deltas), not the per-entry delta count — the paper's
    # 12.1 % vs 1.2 % point.  (Our traces have fewer hot IPs than real
    # SPEC, so the history table rather than the delta table is the
    # capacity that binds first; see EXPERIMENTS.md.)
    loss_history = series["history_table"]["1.0x"] - series["history_table"]["0.25x"]
    loss_table = series["table_of_deltas"]["1.0x"] - series["table_of_deltas"]["0.25x"]
    loss_deltas = series["num_deltas"]["1.0x"] - series["num_deltas"]["0.25x"]
    assert max(loss_history, loss_table) >= loss_deltas - 0.02
    # Growing the tables 4x yields at most a marginal gain.
    for key in ("history_table", "table_of_deltas", "num_deltas"):
        assert series[key]["4.0x"] <= series[key]["1.0x"] + 0.08, key
