"""GAP benchmark-suite-like traces: real graph kernels over synthetic graphs.

The paper evaluates 20 single-threaded GAP traces (5 kernels × real and
synthetic graphs).  Here the kernels (BFS, PageRank, SSSP, BC, CC)
actually *execute* over synthetic graphs in CSR form, and every load the
kernel performs is recorded:

* the offsets/frontier walks are one **regular** IP (the stream IP-stride
  and Berti both cover — the paper's bc-5 analysis),
* edge-array reads are short sequential bursts per vertex,
* property gathers (``value[neighbour]``) are **irregular, dependent**
  loads — the unprefetchable part that punishes aggressive prefetchers
  (IPCP's GS class) with useless traffic.

Graphs: ``kron`` (RMAT-style power law), ``urand`` (uniform random),
``road`` (lattice with high locality), ``web`` (power law with locality).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.workloads.trace import Trace

LINE = 64

# Virtual layout of the graph data structures (distinct regions).
_OFFSETS_BASE = 0x2000_0000
_EDGES_BASE = 0x2800_0000
_VALUES_BASE = 0x3000_0000
_FRONTIER_BASE = 0x3800_0000
_PARENT_BASE = 0x4000_0000

# The IPs of the kernel's loads (one per logical access site).
IP_OFFSETS = 0x430001   # offsets[u], offsets[u+1]
IP_EDGES = 0x430002     # edges[e] (4-byte ids: 16 per line)
IP_VALUES = 0x430003    # value[v] gather (dependent)
IP_PARENT = 0x430004    # parent/dist[v] gather (dependent, 2nd property)
IP_FRONTIER = 0x430005  # frontier[i] walk (regular)
IP_UPDATE = 0x430006    # value[u] update (write)


Graph = Tuple[List[int], List[int]]  # CSR: offsets, edges


def _rmat_graph(nodes: int, edges: int, seed: int, locality: float = 0.0) -> Graph:
    """Power-law-ish graph via preferential random endpoints.

    Vertex labels are scrambled with a multiplicative permutation, as
    Graph500's Kronecker generator does, so hub vertices are scattered
    across the id space instead of clustering at low ids.
    """
    rng = random.Random(seed)
    prime = 2654435761

    def scramble(x: int) -> int:
        return (x * prime + seed) % nodes

    adj: List[List[int]] = [[] for _ in range(nodes)]
    for _ in range(edges):
        # Squaring a uniform pick skews towards low ids (hubs) before
        # the label scramble spreads them out.
        u = int((rng.random() ** 2) * nodes) % nodes
        if locality > 0 and rng.random() < locality:
            v = min(nodes - 1, u + rng.randrange(1, 64))
        else:
            v = int((rng.random() ** 2) * nodes) % nodes
        if u != v:
            adj[scramble(u)].append(scramble(v))
    return _to_csr(adj)


def _urand_graph(nodes: int, edges: int, seed: int) -> Graph:
    rng = random.Random(seed)
    adj: List[List[int]] = [[] for _ in range(nodes)]
    for _ in range(edges):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u != v:
            adj[u].append(v)
    return _to_csr(adj)


def _road_graph(nodes: int, seed: int) -> Graph:
    """Lattice-like: neighbours are id-adjacent (high spatial locality)."""
    rng = random.Random(seed)
    adj: List[List[int]] = [[] for _ in range(nodes)]
    for u in range(nodes):
        for d in (1, 2):
            if u + d < nodes:
                adj[u].append(u + d)
        if rng.random() < 0.05:
            adj[u].append(rng.randrange(nodes))
    return _to_csr(adj)


def _to_csr(adj: List[List[int]]) -> Graph:
    offsets = [0]
    edges: List[int] = []
    for neighbours in adj:
        edges.extend(neighbours)
        offsets.append(len(edges))
    return offsets, edges


GRAPHS: Dict[str, Callable[[float], Graph]] = {
    "kron": lambda scale: _rmat_graph(
        int(60000 * scale), int(260000 * scale), seed=7
    ),
    "urand": lambda scale: _urand_graph(
        int(60000 * scale), int(260000 * scale), seed=8
    ),
    "road": lambda scale: _road_graph(int(90000 * scale), seed=9),
    "web": lambda scale: _rmat_graph(
        int(60000 * scale), int(260000 * scale), seed=10, locality=0.5
    ),
}


MAX_DEGREE_RECORDED = 24  # hub-node cap so short windows stay representative


class _Recorder:
    """Collects the loads a kernel performs, with dependency tagging."""

    def __init__(self, name: str, max_records: int) -> None:
        self.trace = Trace(name=name, suite="gap")
        self.max_records = max_records

    def edge_range(self, offsets, u):
        """Edge indices to record for node ``u``, hub-capped."""
        start, stop = offsets[u], offsets[u + 1]
        return range(start, min(stop, start + MAX_DEGREE_RECORDED))

    @property
    def full(self) -> bool:
        return len(self.trace.records) >= self.max_records

    def offsets(self, u: int, gap: int = 9) -> None:
        self.trace.append(IP_OFFSETS, _OFFSETS_BASE + (u * 8 // LINE) * LINE,
                          gap=gap)

    def edge(self, e: int, gap: int = 6) -> None:
        # Edge ids are 4-byte: 16 per cache line (GAP uses 32-bit ids).
        self.trace.append(IP_EDGES, _EDGES_BASE + (e * 4 // LINE) * LINE,
                          gap=gap)

    def value(self, v: int, gap: int = 9, dep: int = 1) -> None:
        self.trace.append(IP_VALUES, _VALUES_BASE + (v * 8 // LINE) * LINE,
                          gap=gap, dep=dep)

    def parent(self, v: int, gap: int = 7, dep: int = 1) -> None:
        """Second per-vertex property gather (dist/parent array)."""
        self.trace.append(IP_PARENT, _PARENT_BASE + (v * 8 // LINE) * LINE,
                          gap=gap, dep=dep)

    def frontier(self, i: int, gap: int = 9) -> None:
        self.trace.append(IP_FRONTIER, _FRONTIER_BASE + (i * 8 // LINE) * LINE,
                          gap=gap)

    def update(self, u: int, gap: int = 6) -> None:
        self.trace.append(IP_UPDATE, _VALUES_BASE + (u * 8 // LINE) * LINE,
                          is_write=True, gap=gap)


def bfs_trace(graph: Graph, name: str, max_records: int) -> Trace:
    offsets, edges = graph
    nodes = len(offsets) - 1
    rec = _Recorder(name, max_records)
    visited = [False] * nodes
    for source in range(0, nodes, max(1, nodes // 8)):
        if rec.full:
            break
        if visited[source]:
            continue
        frontier = [source]
        visited[source] = True
        while frontier and not rec.full:
            next_frontier = []
            for i, u in enumerate(frontier):
                rec.frontier(i)
                rec.offsets(u)
                for e in rec.edge_range(offsets, u):
                    rec.edge(e)
                    v = edges[e]
                    rec.value(v)   # visited[v] check: dependent gather
                    rec.parent(v)  # parent[v] update path: dependent gather
                    if not visited[v]:
                        visited[v] = True
                        next_frontier.append(v)
                if rec.full:
                    break
            frontier = next_frontier
    return rec.trace


def pagerank_trace(graph: Graph, name: str, max_records: int) -> Trace:
    offsets, edges = graph
    nodes = len(offsets) - 1
    rec = _Recorder(name, max_records)
    while not rec.full:
        for u in range(nodes):
            rec.offsets(u)
            for e in rec.edge_range(offsets, u):
                rec.edge(e)
                rec.value(edges[e])
                rec.parent(edges[e])
            rec.update(u)
            if rec.full:
                break
    return rec.trace


def sssp_trace(graph: Graph, name: str, max_records: int) -> Trace:
    """Bellman-Ford-style relaxation rounds."""
    offsets, edges = graph
    nodes = len(offsets) - 1
    rec = _Recorder(name, max_records)
    rng = random.Random(99)
    while not rec.full:
        # Each round relaxes a pseudo-frontier of active vertices.
        active = sorted(rng.sample(range(nodes), max(1, nodes // 6)))
        for i, u in enumerate(active):
            rec.frontier(i)
            rec.offsets(u)
            for e in rec.edge_range(offsets, u):
                rec.edge(e)
                rec.value(edges[e])
                rec.parent(edges[e])
                rec.update(edges[e])
            if rec.full:
                break
    return rec.trace


def bc_trace(graph: Graph, name: str, max_records: int) -> Trace:
    """Betweenness centrality: BFS passes + dependency back-propagation.

    Matches the paper's bc-5 description — one very regular IP (the
    successor-list walk) among otherwise chaotic gathers.
    """
    offsets, edges = graph
    nodes = len(offsets) - 1
    rec = _Recorder(name, max_records)
    rng = random.Random(17)
    while not rec.full:
        order = list(range(0, nodes, 2))
        for i, u in enumerate(order):
            rec.frontier(i)           # regular: the paper's covered IP
            rec.offsets(u)
            for e in rec.edge_range(offsets, u):
                rec.edge(e)
                rec.value(edges[e])
            # chaotic dependency updates
            rec.value(rng.randrange(nodes), dep=1)
            if rec.full:
                break
    return rec.trace


def cc_trace(graph: Graph, name: str, max_records: int) -> Trace:
    """Label propagation connected components."""
    offsets, edges = graph
    nodes = len(offsets) - 1
    rec = _Recorder(name, max_records)
    labels = list(range(nodes))
    while not rec.full:
        for u in range(nodes):
            rec.offsets(u)
            for e in rec.edge_range(offsets, u):
                rec.edge(e)
                v = edges[e]
                rec.value(v)
                if labels[v] < labels[u]:
                    labels[u] = labels[v]
                    rec.update(u)
            if rec.full:
                break
    return rec.trace


KERNELS: Dict[str, Callable[[Graph, str, int], Trace]] = {
    "bfs": bfs_trace,
    "pr": pagerank_trace,
    "sssp": sssp_trace,
    "bc": bc_trace,
    "cc": cc_trace,
}


def gap_suite(
    scale: float = 1.0,
    kernels: List[str] | None = None,
    graphs: List[str] | None = None,
) -> List[Trace]:
    """GAP-like traces (default: 5 kernels × 4 graphs = 20 traces)."""
    kernels = kernels or list(KERNELS)
    graphs = graphs or list(GRAPHS)
    max_records = max(1000, int(12000 * scale))
    built = {g: GRAPHS[g](min(1.0, scale)) for g in graphs}
    traces = []
    for kernel in kernels:
        for gname in graphs:
            trace = KERNELS[kernel](
                built[gname], f"{kernel}-{gname}", max_records
            )
            traces.append(trace)
    return traces


def gap_trace(kernel: str, graph: str, scale: float = 1.0) -> Trace:
    """One GAP-like trace, e.g. ``gap_trace('bfs', 'kron')``."""
    g = GRAPHS[graph](min(1.0, scale))
    return KERNELS[kernel](g, f"{kernel}-{graph}", max(1000, int(12000 * scale)))
