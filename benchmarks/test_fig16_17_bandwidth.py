"""Figures 16 and 17: effect of constrained DRAM bandwidth (DDR5-6400 vs
DDR4-3200 vs DDR3-1600) on single- and multi-level prefetching.

Paper reference: moving from 6400 to 1600 MTPS costs little on GAP and a
moderate amount on SPEC (max −4.1 % for Berti and Berti+SPP-PPF); the
prefetcher ranking is unchanged at every bandwidth point.
"""

from common import once, run, save_report, spec_traces

from repro.analysis.metrics import geomean
from repro.analysis.report import format_series
from repro.simulator.config import default_config

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]
COMBO = ("berti", "spp_ppf")
MTPS = [6400, 3200, 1600]


def test_fig16_fig17_bandwidth(benchmark):
    def compute():
        series = {name: {} for name in NAMES + ["berti+spp_ppf"]}
        traces = spec_traces()
        for mtps in MTPS:
            cfg = default_config().with_dram_mtps(mtps)
            tag = f"mtps{mtps}"
            base = {
                t.name: run(t, "ip_stride", config=cfg, tag=tag)
                for t in traces
            }
            for name in NAMES:
                ratios = []
                for t in traces:
                    r = run(t, name, config=cfg, tag=tag)
                    ratios.append(r.speedup_over(base[t.name]))
                series[name][str(mtps)] = geomean(ratios)
            ratios = []
            for t in traces:
                r = run(t, COMBO[0], COMBO[1], config=cfg, tag=tag)
                ratios.append(r.speedup_over(base[t.name]))
            series["berti+spp_ppf"][str(mtps)] = geomean(ratios)
        return series

    series = once(benchmark, compute)
    save_report(
        "fig16_17_bandwidth",
        format_series(
            "Figures 16/17 — speedup vs IP-stride under constrained DRAM"
            " bandwidth (SPEC17; columns are MTPS)\n"
            "(paper: ranking unchanged; moderate loss at 1600 MTPS)",
            series,
        ),
    )

    # Berti stays the best L1D prefetcher at every bandwidth point.
    for mtps in MTPS:
        col = str(mtps)
        vals = {n: series[n][col] for n in NAMES}
        assert vals["berti"] >= max(vals["mlop"], vals["ipcp"]) - 0.07, vals
        assert vals["berti"] > 1.0
