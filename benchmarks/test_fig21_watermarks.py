"""Figure 21: sensitivity to the L1/L2 coverage watermarks.

Paper reference: the (65 %, 35 %) pair is the sweet spot; a broad band of
configurations helps, extreme watermarks hurt both coverage (too high)
and accuracy (too low).
"""

from common import SCALE, once, save_report

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.engine import simulate
from repro.workloads.gap import gap_suite
from repro.workloads.spec_like import spec17_suite

WATERMARKS = [
    (0.95, 0.95),
    (0.95, 0.65),
    (0.65, 0.65),
    (0.65, 0.35),   # the paper's configuration
    (0.65, 0.10),
    (0.35, 0.35),
    (0.35, 0.10),
    (0.10, 0.10),
]


def test_fig21_watermark_sweep(benchmark):
    def compute():
        traces = spec17_suite(SCALE * 0.6) + gap_suite(
            SCALE * 0.6, graphs=["kron", "urand"], kernels=["pr", "sssp", "bc"]
        )
        bases = {
            t.name: simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
            for t in traces
        }
        out = {}
        for high, medium in WATERMARKS:
            cfg = BertiConfig().with_watermarks(high, medium)
            ratios = []
            for t in traces:
                r = simulate(t, l1d_prefetcher=BertiPrefetcher(cfg))
                ratios.append(r.speedup_over(bases[t.name]))
            out[(high, medium)] = geomean(ratios)
        return out

    speeds = once(benchmark, compute)
    rows = [
        [f"{int(h*100)}%", f"{int(m*100)}%", s]
        for (h, m), s in speeds.items()
    ]
    save_report(
        "fig21_watermarks",
        format_table(
            ["L1 watermark", "L2 watermark", "geomean speedup"], rows,
            title=(
                "Figure 21 — watermark sensitivity (vs IP-stride)\n"
                "(paper: sweet spot at 65%/35%; extremes hurt)"
            ),
        ),
    )

    default = speeds[(0.65, 0.35)]
    # The paper's configuration is at (or within noise of) the best.
    assert default >= max(speeds.values()) - 0.03
    # Extremely low watermarks (spray everything) are worse than default.
    assert speeds[(0.10, 0.10)] <= default + 0.01
    # A broad middle band still helps (speedup > 1 for most settings).
    helping = sum(1 for s in speeds.values() if s > 1.0)
    assert helping >= len(WATERMARKS) // 2
