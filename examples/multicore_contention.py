#!/usr/bin/env python3
"""Domain example: 4-core mixes under shared-DRAM contention (paper §IV-I).

Runs a heterogeneous 4-core mix (two SPEC-like, two GAP-like traces) on
the shared LLC + one-DDR5-channel system, comparing per-core and
weighted speedups of the L1D prefetchers.  Under contention, every
useless prefetch steals bandwidth from another core, so Berti's accuracy
advantage grows relative to single-core (the paper's +16.2 % multi-core
vs +8.5 % single-core).

Run:  python examples/multicore_contention.py
"""

from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.multicore import simulate_multicore, weighted_speedup
from repro.workloads.gap import gap_trace
from repro.workloads.spec_like import lbm_2676, mcf_s_1554

PREFETCHERS = ["ip_stride", "mlop", "ipcp", "berti"]


def main() -> None:
    mix = [
        mcf_s_1554(0.3),
        lbm_2676(0.3),
        gap_trace("cc", "kron", 0.3),
        gap_trace("bc", "urand", 0.3),
    ]
    print("4-core mix:", ", ".join(t.name for t in mix), "\n")

    base = simulate_multicore(
        mix, [make_prefetcher("ip_stride") for _ in mix]
    )
    rows = []
    summary = []
    for name in PREFETCHERS:
        results = simulate_multicore(
            mix, [make_prefetcher(name) for _ in mix]
        )
        for core, (r, b) in enumerate(zip(results, base)):
            rows.append([name, core, r.trace_name, r.ipc,
                         r.ipc / b.ipc if b.ipc else 0.0])
        summary.append([name, weighted_speedup(results, base)])

    print(format_table(
        ["prefetcher", "core", "trace", "IPC", "speedup"],
        rows, title="Per-core results",
    ))
    print()
    print(format_table(
        ["prefetcher", "weighted speedup"],
        summary, title="Mix summary (vs all-cores IP-stride)",
    ))


if __name__ == "__main__":
    main()
