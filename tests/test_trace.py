"""Tests for the trace container and transforms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.trace import Trace, concatenate, interleave


def simple_trace(name="t", n=10, ip=0x1, base=0):
    t = Trace(name)
    for i in range(n):
        t.append(ip, base + i * 64, gap=3, dep=i % 2)
    return t


class TestContainer:
    def test_append_and_len(self):
        t = simple_trace(n=5)
        assert len(t) == 5

    def test_record_shape(self):
        t = Trace("t")
        t.append(0x1, 0x40, is_write=True, gap=7, dep=2)
        assert t.records[0] == (0x1, 0x40, True, 7, 2)

    def test_instruction_count(self):
        t = simple_trace(n=4)  # 4 records + 4*3 gaps
        assert t.instruction_count == 16

    def test_unique_ips_and_lines(self):
        t = Trace("t")
        t.append(1, 0)
        t.append(1, 64)
        t.append(2, 64)
        assert t.unique_ips == 2
        assert t.unique_lines == 2

    def test_write_fraction(self):
        t = Trace("t")
        t.append(1, 0, is_write=True)
        t.append(1, 64)
        assert t.write_fraction == 0.5

    def test_footprint(self):
        t = simple_trace(n=10)
        assert t.footprint_bytes() == 10 * 64

    def test_slice(self):
        t = simple_trace(n=10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert s.records == t.records[2:5]

    def test_repeated(self):
        t = simple_trace(n=3)
        assert len(t.repeated(4)) == 12

    def test_iteration(self):
        t = simple_trace(n=3)
        assert list(t) == t.records


class TestSerialisation:
    def test_roundtrip(self, tmp_path):
        t = simple_trace(n=20)
        t.suite = "spec17"
        t.description = "test trace"
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.records == t.records
        assert loaded.name == t.name
        assert loaded.suite == "spec17"

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.integers(min_value=0, max_value=2**40),
            st.booleans(),
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=8),
        ),
        min_size=1, max_size=50,
    ))
    def test_roundtrip_property(self, records):
        import tempfile
        from pathlib import Path

        t = Trace("p")
        t.extend(records)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "p.npz"
            t.save(path)
            assert Trace.load(path).records == list(records)


class TestCombinators:
    def test_interleave_round_robin(self):
        a = simple_trace("a", n=2, ip=1)
        b = simple_trace("b", n=2, ip=2)
        out = interleave([a, b], "mix")
        assert [r[0] for r in out.records] == [1, 2, 1, 2]

    def test_interleave_uneven_lengths(self):
        a = simple_trace("a", n=3, ip=1)
        b = simple_trace("b", n=1, ip=2)
        out = interleave([a, b], "mix")
        assert len(out) == 4
        assert [r[0] for r in out.records] == [1, 2, 1, 1]

    def test_interleave_chunked(self):
        a = simple_trace("a", n=4, ip=1)
        b = simple_trace("b", n=4, ip=2)
        out = interleave([a, b], "mix", chunk=2)
        assert [r[0] for r in out.records] == [1, 1, 2, 2, 1, 1, 2, 2]

    def test_concatenate(self):
        a = simple_trace("a", n=2, ip=1)
        b = simple_trace("b", n=3, ip=2)
        out = concatenate([a, b], "phases")
        assert len(out) == 5
        assert [r[0] for r in out.records] == [1, 1, 2, 2, 2]

    def test_empty_inputs(self):
        assert len(interleave([], "e")) == 0
        assert len(concatenate([], "e")) == 0
