"""Signature Path Prefetching with Perceptron Prefetch Filtering
(SPP: Kim et al., MICRO 2016; PPF: Bhatia et al., ISCA 2019).

SPP is an L2 delta prefetcher operating within 4 KB pages:

* a **signature table** tracks, per page, the last offset seen and a
  compressed signature (hash) of the delta history inside that page;
* a **pattern table**, indexed by signature, holds candidate next deltas
  with per-delta and per-signature counters;
* prediction walks the pattern table in a **lookahead** loop: follow the
  highest-confidence delta, multiply the path confidence, and keep
  prefetching until the confidence drops below threshold.  High
  confidence fills L2, low confidence fills only the LLC.

**PPF** wraps SPP with a perceptron filter: each proposed prefetch is
scored by summing weights indexed by features (signature, delta, offset,
lookahead depth); prefetches below the threshold are rejected.  Weights
train online: +1 when a prefetched line is demanded, −1 when it is
evicted unused, which recovers accuracy that raw lookahead loses.

The combination is the strongest L2 competitor in the paper's
multi-level experiments (Berti+SPP-PPF is the best combo in Fig. 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import (
    FILL_L2,
    FILL_LLC,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)

_LINES_PER_PAGE = 64


class _PatternEntry:
    __slots__ = ("c_sig", "deltas")

    def __init__(self) -> None:
        self.c_sig = 0
        self.deltas: Dict[int, int] = {}


class SPPPrefetcher(Prefetcher):
    """SPP, optionally wrapped with the PPF perceptron filter."""

    name = "spp_ppf"
    level = "l2"

    SIG_BITS = 12
    SIG_SHIFT = 3
    COUNTER_MAX = 15
    PF_THRESHOLD = 0.25
    FILL_THRESHOLD = 0.60
    MAX_LOOKAHEAD = 6
    MAX_DELTAS_PER_SIG = 4

    def __init__(
        self,
        st_entries: int = 256,
        pt_entries: int = 512,
        use_ppf: bool = True,
        ppf_threshold: int = 0,
        ppf_weight_max: int = 15,
    ) -> None:
        self.st_entries = st_entries
        self.pt_entries = pt_entries
        self.use_ppf = use_ppf
        self.ppf_threshold = ppf_threshold
        self.ppf_weight_max = ppf_weight_max

        # page -> (last_offset, signature); FIFO-bounded dict.
        self._st: Dict[int, Tuple[int, int]] = {}
        self._pt: List[_PatternEntry] = [
            _PatternEntry() for _ in range(pt_entries)
        ]
        # PPF weight tables (feature -> weight).
        self._w_sig = [0] * 4096
        self._w_delta = [0] * 128
        self._w_offset = [0] * 64
        self._w_depth = [0] * 8
        # line -> features of the prefetch that brought it (for training).
        self._inflight_features: Dict[int, Tuple[int, int, int, int]] = {}
        self.ppf_rejections = 0

    # ------------------------------------------------------------------

    def _sig_update(self, sig: int, delta: int) -> int:
        return ((sig << self.SIG_SHIFT) ^ (delta & 0x7F)) & (
            (1 << self.SIG_BITS) - 1
        )

    def _pt_entry(self, sig: int) -> _PatternEntry:
        return self._pt[sig % self.pt_entries]

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        page = line // _LINES_PER_PAGE
        offset = line % _LINES_PER_PAGE

        st = self._st
        prev = st.get(page)
        sig = 0
        if prev is not None:
            last_offset, old_sig = prev
            delta = offset - last_offset
            if delta != 0:
                entry = self._pt_entry(old_sig)
                if entry.c_sig >= self.COUNTER_MAX:
                    # Saturation: halve everything (keeps ratios), then
                    # count this event like any other so per-delta counts
                    # can never exceed the signature counter.
                    entry.c_sig //= 2
                    for d in list(entry.deltas):
                        entry.deltas[d] //= 2
                entry.c_sig += 1
                cnt = entry.deltas.get(delta, 0)
                if cnt == 0 and len(entry.deltas) >= self.MAX_DELTAS_PER_SIG:
                    weakest = min(entry.deltas, key=entry.deltas.get)
                    del entry.deltas[weakest]
                entry.deltas[delta] = min(cnt + 1, self.COUNTER_MAX)
                sig = self._sig_update(old_sig, delta)
            else:
                sig = old_sig
        st.pop(page, None)
        st[page] = (offset, sig)
        if len(st) > self.st_entries:
            del st[next(iter(st))]

        return self._lookahead(page, offset, sig)

    def _lookahead(
        self, page: int, offset: int, sig: int
    ) -> List[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        path_conf = 1.0
        cur_offset = offset
        for depth in range(self.MAX_LOOKAHEAD):
            entry = self._pt_entry(sig)
            if entry.c_sig == 0 or not entry.deltas:
                break
            best_delta, best_count = max(
                entry.deltas.items(), key=lambda kv: kv[1]
            )
            for delta, count in entry.deltas.items():
                conf = min(1.0, path_conf * count / entry.c_sig)
                if conf < self.PF_THRESHOLD:
                    continue
                target_offset = cur_offset + delta
                if not 0 <= target_offset < _LINES_PER_PAGE:
                    continue  # SPP stays within the page (physical space)
                target = page * _LINES_PER_PAGE + target_offset
                fill = FILL_L2 if conf >= self.FILL_THRESHOLD else FILL_LLC
                if self._ppf_accept(sig, delta, target_offset, depth, target):
                    requests.append(
                        PrefetchRequest(
                            line=target, fill_level=fill, confidence=conf
                        )
                    )
            best_conf = path_conf * best_count / entry.c_sig
            if best_conf < self.PF_THRESHOLD:
                break
            path_conf = best_conf
            cur_offset += best_delta
            if not 0 <= cur_offset < _LINES_PER_PAGE:
                break
            sig = self._sig_update(sig, best_delta)
        return requests

    # ------------------------------------------------------------------
    # PPF
    # ------------------------------------------------------------------

    def _features(
        self, sig: int, delta: int, offset: int, depth: int
    ) -> Tuple[int, int, int, int]:
        return (
            sig % len(self._w_sig),
            (delta + 64) % len(self._w_delta),
            offset % len(self._w_offset),
            min(depth, len(self._w_depth) - 1),
        )

    def _ppf_accept(
        self, sig: int, delta: int, offset: int, depth: int, target: int
    ) -> bool:
        if not self.use_ppf:
            return True
        f = self._features(sig, delta, offset, depth)
        score = (
            self._w_sig[f[0]] + self._w_delta[f[1]]
            + self._w_offset[f[2]] + self._w_depth[f[3]]
        )
        if score < self.ppf_threshold:
            self.ppf_rejections += 1
            return False
        self._inflight_features[target] = f
        if len(self._inflight_features) > 1024:
            del self._inflight_features[next(iter(self._inflight_features))]
        return True

    def _train_ppf(self, line: int, useful: bool) -> None:
        f = self._inflight_features.pop(line, None)
        if f is None:
            return
        step = 1 if useful else -1
        cap = self.ppf_weight_max
        for table, idx in zip(
            (self._w_sig, self._w_delta, self._w_offset, self._w_depth), f
        ):
            table[idx] = max(-cap, min(cap, table[idx] + step))

    def on_prefetch_hit(self, access: AccessInfo, pf_latency: int) -> None:
        self._train_ppf(access.line, useful=True)

    def on_evict(self, line: int, was_useful: bool) -> None:
        if not was_useful:
            self._train_ppf(line, useful=False)

    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        # ST: 256 x (page tag 16 + offset 6 + sig 12); PT: 512 x
        # (c_sig 4 + 4 deltas x (7 + 4)); PPF weights (5-bit each) per
        # Table III's table sizes.
        spp = self.st_entries * (16 + 6 + 12) + self.pt_entries * (4 + 4 * 11)
        ppf = 0
        if self.use_ppf:
            ppf = (4096 + 128 + 64 + 8) * 5 + 1024 * 16  # weights + inflight
        return spp + ppf

    def reset(self) -> None:
        self._st.clear()
        self._pt = [_PatternEntry() for _ in range(self.pt_entries)]
        self._w_sig = [0] * 4096
        self._w_delta = [0] * 128
        self._w_offset = [0] * 64
        self._w_depth = [0] * 8
        self._inflight_features.clear()
        self.ppf_rejections = 0


def make_spp(use_ppf: bool = True) -> SPPPrefetcher:
    """Factory matching the paper's Table III configuration."""
    pf = SPPPrefetcher(use_ppf=use_ppf)
    if not use_ppf:
        pf.name = "spp"
    return pf
