"""CloudSuite-like traces: scale-out server workloads.

The paper's CloudSuite finding (§IV-G) is that data-prefetching headroom
is small — L1D MPKI averages 6.9 (vs. 42/84 for SPEC/GAP) and even an
ideal L1D gains little — while *temporal* structure exists that only
MISB-style prefetchers exploit (Cassandra, Classification in Fig. 19).

These generators reproduce exactly those properties:

* most accesses hit a small hot working set (low MPKI),
* the misses that remain come from *recurring irregular episodes*
  (request handlers touching fixed pseudo-random line sequences) —
  temporal, not spatial, structure,
* instruction gaps are large (frontend-bound services).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.workloads.synthetic import (
    make_trace,
    random_access,
    strided_stream,
    temporal_sequence,
)
from repro.workloads.trace import Trace

_SUITE = "cloudsuite"
_BASE = 0x5000_0000
_REGION = 0x0100_0000


def _episodes(ip: int, num_episodes: int, lines_per_episode: int,
              repetitions: int, seed: int, gap: int = 30,
              dep: int = 0) -> List:
    """Recurring request-handler episodes: fixed irregular sequences
    replayed in random order — temporal prefetcher food.

    ``dep=1`` chains the accesses within an episode (request handlers
    walking linked structures), which is what gives a temporal
    prefetcher room to run ahead of the demand chain — the property the
    paper's §IV-H observes on Cassandra and Classification.
    """
    rng = random.Random(seed)
    episodes = [
        [rng.randrange(1 << 16) for _ in range(lines_per_episode)]
        for _ in range(num_episodes)
    ]
    records = []
    total = repetitions * num_episodes
    for _ in range(total):
        ep = episodes[rng.randrange(num_episodes)]
        records.extend(temporal_sequence(ip, ep, 1, gap=gap, dep=dep))
    return records


def cassandra_like(scale: float = 1.0) -> Trace:
    n = max(200, int(1800 * scale))
    parts = [
        _episodes(0x440000, 48, 60, max(2, n // 500), seed=101, dep=1),
        random_access(0x440100, _BASE, 1 << 10, n, gap=26, seed=102),
        strided_stream(0x440200, _BASE + _REGION, 1, n // 2, gap=26),
    ]
    return make_trace("cassandra", parts, suite=_SUITE,
                      description="recurring key-value request episodes")


def classification_like(scale: float = 1.0) -> Trace:
    """The one CloudSuite benchmark where an accurate prefetcher (Berti)
    still wins: per-IP regular feature-vector walks with low intensity."""
    n = max(200, int(2000 * scale))
    parts = [
        strided_stream(0x441000, _BASE, 2, n, gap=24),
        strided_stream(0x441100, _BASE + _REGION, 2, n, gap=24),
        _episodes(0x441200, 32, 40, max(2, n // 400), seed=111, dep=1),
        random_access(0x441300, _BASE + 2 * _REGION, 1 << 9, n // 2,
                      gap=24, seed=112),
    ]
    return make_trace("classification", parts, suite=_SUITE,
                      description="feature-vector scans plus episodes")


def cloud9_like(scale: float = 1.0) -> Trace:
    """Mostly L1D-resident: little headroom even for an ideal prefetcher."""
    n = max(200, int(2400 * scale))
    parts = [
        random_access(0x442000, _BASE, 1 << 8, n * 2, gap=28, seed=121),
        _episodes(0x442100, 12, 20, max(2, n // 400), seed=122),
    ]
    return make_trace("cloud9", parts, suite=_SUITE,
                      description="hot-set dominated; low MPKI")


def nutch_like(scale: float = 1.0) -> Trace:
    n = max(200, int(2200 * scale))
    parts = [
        random_access(0x443000, _BASE, 1 << 9, n * 2, gap=30, seed=131),
        _episodes(0x443100, 20, 24, max(2, n // 450), seed=132),
        strided_stream(0x443200, _BASE + _REGION, 1, n // 3, gap=30),
    ]
    return make_trace("nutch", parts, suite=_SUITE,
                      description="search indexing; low MPKI")


GENERATORS: Dict[str, Callable[[float], Trace]] = {
    "cassandra": cassandra_like,
    "classification": classification_like,
    "cloud9": cloud9_like,
    "nutch": nutch_like,
}


def cloudsuite_suite(scale: float = 1.0) -> List[Trace]:
    return [gen(scale) for gen in GENERATORS.values()]
