"""End-to-end integration tests: the paper's headline claims at reduced
scale.

These mirror the benchmark harness assertions but run in seconds as part
of the normal test suite, guarding the qualitative results against
regressions in any layer (prefetcher, hierarchy, core model, workloads).
"""

import pytest

from repro import simulate
from repro.analysis.metrics import geomean_speedup
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.gap import gap_trace
from repro.workloads.spec_like import (
    cactuBSSN,
    lbm_2676,
    mcf_s_1554,
    xalancbmk_like,
)

SCALE = 0.35


@pytest.fixture(scope="module")
def mcf_results():
    trace = mcf_s_1554(SCALE)
    return {
        name: simulate(trace, l1d_prefetcher=make_prefetcher(name))
        for name in ("ip_stride", "mlop", "ipcp", "berti")
    }


class TestMcfShowcase:
    """mcf-1554B: Berti's best SPEC trace (paper: 1.89x vs IP-stride)."""

    def test_berti_speeds_up_substantially(self, mcf_results):
        speed = mcf_results["berti"].speedup_over(mcf_results["ip_stride"])
        assert speed > 1.25

    def test_berti_beats_global_delta_prefetcher(self, mcf_results):
        assert (
            mcf_results["berti"].ipc > mcf_results["mlop"].ipc
        )

    def test_berti_accuracy_high(self, mcf_results):
        assert mcf_results["berti"].pf_l1d.accuracy > 0.6

    def test_berti_mostly_timely(self, mcf_results):
        pf = mcf_results["berti"].pf_l1d
        assert pf.timely > pf.late


class TestCactuAdversarial:
    """CactuBSSN: the paper's one case where global deltas win."""

    def test_global_beats_local(self):
        trace = cactuBSSN(SCALE)
        base = simulate(trace, l1d_prefetcher=make_prefetcher("ip_stride"))
        mlop = simulate(trace, l1d_prefetcher=make_prefetcher("mlop"))
        berti = simulate(trace, l1d_prefetcher=make_prefetcher("berti"))
        assert mlop.speedup_over(base) > berti.speedup_over(base)
        # Berti degrades gracefully: it issues ~nothing rather than junk.
        assert berti.speedup_over(base) > 0.9
        assert berti.pf_l1d.issued < mlop.pf_l1d.issued / 2


class TestLbmAlternation:
    """lbm's +1,+2 stride alternation (paper §II-B)."""

    def test_berti_learns_period_deltas(self):
        from repro.core.berti import BertiPrefetcher
        from repro.core.delta_table import L1D_PREF

        trace = lbm_2676(SCALE)
        pf = BertiPrefetcher()
        simulate(trace, l1d_prefetcher=pf)
        selected = dict(pf.deltas.prefetch_deltas(0x401CB0))
        # The period-sum deltas (+3, +6, ...) reach the L1D tier.
        assert any(
            d % 3 == 0 and s == L1D_PREF for d, s in selected.items()
        )


class TestSuiteOrdering:
    """Reduced Figure 8: Berti is the best L1D prefetcher overall."""

    def test_geomean_ordering(self):
        traces = [
            mcf_s_1554(SCALE),
            xalancbmk_like(SCALE),
            lbm_2676(SCALE),
            gap_trace("sssp", "urand", SCALE),
            gap_trace("cc", "kron", SCALE),
        ]
        names = ["ip_stride", "mlop", "ipcp", "berti"]
        per_trace = {
            t.name: {
                n: simulate(t, l1d_prefetcher=make_prefetcher(n))
                for n in names
            }
            for t in traces
        }
        speeds = geomean_speedup(per_trace)
        assert speeds["berti"] > 1.0
        assert speeds["berti"] >= max(speeds["mlop"], speeds["ipcp"]) - 0.05


class TestMultilevelClaim:
    """Figure 7's headline at micro scale: Berti alone vs MLOP+Bingo."""

    def test_berti_alone_vs_heavy_combo(self):
        trace = mcf_s_1554(SCALE)
        base = simulate(trace, l1d_prefetcher=make_prefetcher("ip_stride"))
        berti = simulate(trace, l1d_prefetcher=make_prefetcher("berti"))
        combo = simulate(
            trace,
            l1d_prefetcher=make_prefetcher("mlop"),
            l2_prefetcher=make_prefetcher("bingo"),
        )
        assert berti.speedup_over(base) >= combo.speedup_over(base) - 0.04
