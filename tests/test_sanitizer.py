"""SimSan runtime invariant checker tests.

Covers: configuration validation, neutrality (a sanitized run is
bit-identical to an unsanitized one), detection of seeded corruptions
in every structure family, and end-to-end localisation — a corruption
injected mid-simulation surfaces as a typed SanitizerError naming the
access index and the offending structure.
"""

import pytest

from repro.errors import ConfigError, SanitizerError
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer import (
    SanitizerConfig,
    attach_sanitizer,
    check_hierarchy,
    sanitizer_post_build,
)
from repro.sanitizer.invariants import (
    check_berti,
    check_cache,
    check_mshr,
    check_pq,
    check_replacement,
)
from repro.sanitizer.lockstep import quick_trace
from repro.simulator.engine import build_hierarchy, simulate
from repro.simulator.config import default_config


@pytest.fixture
def trace():
    return quick_trace(900, "san_trace")


def warmed_hierarchy(trace, l1d="berti"):
    """A hierarchy that has simulated ``trace`` (state left in place)."""
    box = {}

    def keep(h):
        box["h"] = h

    simulate(trace, l1d_prefetcher=make_prefetcher(l1d), post_build=keep)
    return box["h"]


class TestConfig:
    def test_defaults_valid(self):
        cfg = SanitizerConfig()
        assert cfg.check_every == 64 and "mshr" in cfg.families

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigError, match="check_every"):
            SanitizerConfig(check_every=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError, match="unknown sanitizer"):
            SanitizerConfig(families=frozenset({"cache", "typo"}))


class TestNeutrality:
    def test_sanitized_run_bit_identical(self, trace):
        base = simulate(trace, l1d_prefetcher=make_prefetcher("berti"))
        san = simulate(
            trace,
            l1d_prefetcher=make_prefetcher("berti"),
            post_build=sanitizer_post_build(SanitizerConfig(check_every=16)),
        )
        assert base.to_dict() == san.to_dict()

    def test_clean_state_has_no_violations(self, trace):
        h = warmed_hierarchy(trace)
        assert check_hierarchy(h) == []


class TestDetection:
    """Each family catches a seeded corruption of its structure."""

    def test_cache_valid_count_drift(self, trace):
        h = warmed_hierarchy(trace)
        h.l1d._valid_count[0] += 1
        names = [v[0] for v in check_cache(h.l1d)]
        assert "l1d" in names

    def test_cache_where_points_at_wrong_way(self, trace):
        h = warmed_hierarchy(trace)
        line, way = next(iter(h.l1d._where.items()))
        h.l1d._where[line] = (way + 1) % h.l1d.ways
        assert check_cache(h.l1d)

    def test_lru_age_collision(self, trace):
        h = warmed_hierarchy(trace)
        sidx = next(
            s for s in range(h.l1d.num_sets)
            if h.l1d._valid_count[s] >= 2
        )
        ages = h.l1d.policy._age[sidx]
        valid_ways = [w for w, cl in enumerate(h.l1d.sets[sidx]) if cl.valid]
        ages[valid_ways[1]] = ages[valid_ways[0]]
        msgs = [v[1] for v in check_replacement(h.l1d)]
        assert any("uniqueness" in m for m in msgs)

    def test_rrpv_out_of_range(self, trace):
        h = warmed_hierarchy(trace)
        sidx = next(
            s for s in range(h.l2.num_sets) if h.l2._valid_count[s]
        )
        h.l2.policy._rrpv[sidx][0] = 7
        msgs = [v[1] for v in check_replacement(h.l2)]
        assert any("RRPV" in m for m in msgs)

    def test_drrip_psel_out_of_range(self, trace):
        h = warmed_hierarchy(trace)
        h.llc.policy._psel = 4096
        msgs = [v[1] for v in check_replacement(h.llc)]
        assert any("PSEL" in m for m in msgs)

    def test_mshr_timestamp_monotonicity(self):
        from repro.memory.mshr import MSHR

        mshr = MSHR(4)
        e = mshr.allocate(0x10, now=100, ready_cycle=200, is_prefetch=False)
        e.ready_cycle = 50  # ready before alloc: impossible
        msgs = [v[1] for v in check_mshr(mshr, "l1d_mshr")]
        assert any("monotonicity" in m for m in msgs)

    def test_mshr_leaked_entry(self):
        from repro.memory.mshr import MSHR

        mshr = MSHR(4)
        mshr.allocate(0x10, now=100, ready_cycle=200, is_prefetch=False)
        mshr._last_expire = 500  # scan claimed to run at 500; entry stayed
        msgs = [v[1] for v in check_mshr(mshr, "l1d_mshr")]
        assert any("leaked" in m for m in msgs)

    def test_mshr_unsound_min_ready_guard(self):
        from repro.memory.mshr import MSHR

        mshr = MSHR(4)
        mshr.allocate(0x10, now=100, ready_cycle=200, is_prefetch=False)
        mshr._min_ready = 10_000  # guard would skip scans that have work
        msgs = [v[1] for v in check_mshr(mshr, "l1d_mshr")]
        assert any("unsound" in m for m in msgs)

    def test_pq_fifo_discipline(self):
        from repro.memory.hierarchy import _FIFOQueue

        pq = _FIFOQueue(8)
        pq.push(10)    # services at 11.0
        pq.push(10.5)  # queues behind it, services at 12.0
        pq._service_times[0] = 99.0  # older entry now services later
        msgs = [v[1] for v in check_pq(pq)]
        assert any("FIFO" in m for m in msgs)

    def test_berti_counter_overflow(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        table = h.l1d_prefetcher.deltas
        e = next(i for i, v in enumerate(table._valid) if v)
        table._counters[e] = table.config.counter_max + 5
        msgs = [v[1] for v in check_berti(h.l1d_prefetcher,
                                          "l1d_prefetcher")]
        assert any("search counter" in m for m in msgs)

    def test_berti_coverage_exceeds_counter(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        table = h.l1d_prefetcher.deltas
        e = next(
            i for i, v in enumerate(table._valid)
            if v and table._slot_count[i] > 0
        )
        table._slot_cov[e][0] = table._counters[e] + 1
        msgs = [v[1] for v in check_berti(h.l1d_prefetcher,
                                          "l1d_prefetcher")]
        assert any("exceeds" in m for m in msgs)

    def test_berti_by_delta_mirror_broken(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        table = h.l1d_prefetcher.deltas
        e = next(
            i for i, v in enumerate(table._valid)
            if v and table._slot_count[i] > 0
        )
        del table._by_delta[e][table._slot_delta[e][0]]
        assert check_berti(h.l1d_prefetcher, "l1d_prefetcher")

    def test_berti_stale_prediction_cache(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        table = h.l1d_prefetcher.deltas
        e = next(
            i for i, v in enumerate(table._valid)
            if v and table._warmed[i]
        )
        table._pf_cache[e] = [(77, 1)]  # no slot holds delta 77
        msgs = [v[1] for v in check_berti(h.l1d_prefetcher,
                                          "l1d_prefetcher")]
        assert any("stale pf_cache" in m for m in msgs)

    def test_berti_history_ring_discipline(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        hist = h.l1d_prefetcher.history
        ways = hist.config.history_ways
        sidx = next(
            s for s in range(hist.config.history_sets)
            if sum(hist._tags[s * ways + w] >= 0 for w in range(ways)) >= 2
        )
        base = sidx * ways
        occupied = [w for w in range(ways) if hist._tags[base + w] >= 0]
        a, b = base + occupied[0], base + occupied[1]
        # Swap the two rows column-wise: orders no longer monotone.
        for col in (hist._tags, hist._lines, hist._tss, hist._orders):
            col[a], col[b] = col[b], col[a]
        assert check_berti(h.l1d_prefetcher, "l1d_prefetcher")

    def test_berti_history_chain_drift(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        hist = h.l1d_prefetcher.history
        dq = next(
            dq for chains in hist._chains for dq in chains.values() if dq
        )
        dq.append((123456, 7))  # phantom entry not present in the ring
        msgs = [v[1] for v in check_berti(h.l1d_prefetcher,
                                          "l1d_prefetcher")]
        assert any("skip chains" in m for m in msgs)

    def test_berti_victim_heap_missing_candidate(self, trace):
        h = warmed_hierarchy(trace, l1d="berti")
        table = h.l1d_prefetcher.deltas
        e = next(
            i for i, v in enumerate(table._valid)
            if v and any(
                st in (0, 3)  # NO_PREF / L2_PREF_REPL: candidates
                for st in table._slot_status[i][: table._slot_count[i]]
            )
        )
        del table._evict_heap[e][:]
        msgs = [v[1] for v in check_berti(h.l1d_prefetcher,
                                          "l1d_prefetcher")]
        assert any("victim heap" in m for m in msgs)


class TestEndToEnd:
    def test_mid_run_corruption_localised(self, trace):
        """A corruption at access N raises SanitizerError *at* N with the
        structure named (check_every=1 gives exact localisation)."""
        corrupt_at = 400
        calls = [0]

        def hook(h):
            inner = h.demand_access

            def corruptor(ip, vaddr, now, is_write=False):
                latency = inner(ip, vaddr, now, is_write)
                calls[0] += 1
                if calls[0] == corrupt_at:
                    h.l1d._valid_count[0] += 1
                return latency

            h.demand_access = corruptor
            # Attached last → outermost → checks run after the corruptor.
            attach_sanitizer(
                h, SanitizerConfig(check_every=1), trace="san_trace"
            )

        with pytest.raises(SanitizerError) as exc_info:
            simulate(trace, l1d_prefetcher=make_prefetcher("berti"),
                     post_build=hook)
        err = exc_info.value
        assert err.access_index == corrupt_at
        assert err.structure == "l1d"
        assert err.dump  # structure dump attached
        assert "l1d" in str(err)

    def test_families_can_be_narrowed(self, trace):
        """A corruption outside the enabled families is not reported."""
        h = warmed_hierarchy(trace)
        h.l1d._valid_count[0] += 1
        assert check_hierarchy(h, frozenset({"mshr", "pq"})) == []
        assert check_hierarchy(h, frozenset({"cache"}))

    def test_sanitizer_error_pickles(self, trace):
        import pickle

        err = SanitizerError(
            "boom", trace="t", prefetcher="berti", access_index=7,
            structure="l1d_mshr", dump={"line": 3},
        )
        clone = pickle.loads(pickle.dumps(err))
        assert clone.access_index == 7
        assert clone.structure == "l1d_mshr"
        assert clone.dump == {"line": 3}
