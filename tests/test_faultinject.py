"""Tests for the fault-injection harness and the invariant checker.

The MSHR-full / PQ-full injections drive the simulator through its
graceful-degradation corner paths (prefetch drops, demand stalls) that a
clean run rarely exercises at depth; the invariant checker must hold on
every one of them.
"""

import dataclasses

import pytest

from repro.errors import ConfigError, SimulationError, TraceError
from repro.runner import FaultSpec, JobSpec, check_invariants, run_job
from repro.runner.faultinject import (
    CrashingPrefetcher,
    FaultyMSHR,
    FaultyPQ,
    InjectedCrash,
    corrupt_trace,
)
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.catalog import resolve_trace

TRACE = "lbm_s-2676B"
SCALE = 0.05


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="gremlins")

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="crash", period=0)

    def test_spec_in_job_key(self):
        job = JobSpec(trace=TRACE, fault=FaultSpec(kind="crash", period=7))
        assert "fault=crash:7" in job.key


class TestCrashFault:
    def test_crashes_on_nth_access(self):
        from repro.prefetchers.base import AccessInfo

        pf = CrashingPrefetcher(make_prefetcher("ip_stride"), crash_on=3)
        info = AccessInfo(ip=0x400, line=0x1000, hit=False,
                          prefetch_hit=False, now=0)
        pf.on_access(info)
        pf.on_access(info)
        with pytest.raises(InjectedCrash):
            pf.on_access(info)

    def test_delegates_below_threshold(self):
        inner = make_prefetcher("berti")
        pf = CrashingPrefetcher(inner, crash_on=10 ** 9)
        assert pf.name == inner.name and pf.level == inner.level
        assert pf.storage_kb() == inner.storage_kb()

    def test_run_job_wraps_as_simulation_error(self):
        job = JobSpec(trace=TRACE, l1d="berti", scale=SCALE,
                      fault=FaultSpec(kind="crash", period=5))
        with pytest.raises(SimulationError, match="InjectedCrash"):
            run_job(job)


class TestCorruptFault:
    def test_corrupt_trace_flips_addresses(self):
        trace = resolve_trace(TRACE, SCALE)
        bad = corrupt_trace(trace, period=10)
        assert bad.records[0][1] < 0
        assert bad.records[1][1] == trace.records[1][1]

    def test_validate_rejects_corrupt_trace(self):
        bad = corrupt_trace(resolve_trace(TRACE, SCALE), period=10)
        with pytest.raises(TraceError, match="record"):
            bad.validate()

    def test_run_job_classifies_as_trace_error(self):
        job = JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE,
                      fault=FaultSpec(kind="corrupt", period=10))
        with pytest.raises(TraceError):
            run_job(job)


class TestAllocationFaults:
    """MSHR-full / PQ-full corner paths under injected pressure."""

    def test_faulty_mshr_reports_full_periodically(self):
        mshr = FaultyMSHR(size=16, period=2)
        # Periodic queries alternate real / injected-full.
        assert mshr.can_allocate(now=0)
        assert not mshr.can_allocate(now=0)
        assert mshr.injected_failures == 1

    def test_faulty_mshr_allocate_still_works(self):
        mshr = FaultyMSHR(size=16, period=1)  # every query injected
        entry = mshr.allocate(0x1000, now=0, ready_cycle=10,
                              is_prefetch=False)
        assert entry is not None  # real capacity decides, not injection

    def test_faulty_pq_rejects_periodically(self):
        pq = FaultyPQ(size=16, period=2)
        assert pq.push(0) is not None
        assert pq.push(0) is None
        assert pq.injected_failures == 1

    def test_mshr_pressure_drops_prefetches_coherently(self):
        clean = run_job(JobSpec(trace=TRACE, l1d="berti", scale=SCALE))
        faulted = run_job(JobSpec(
            trace=TRACE, l1d="berti", scale=SCALE,
            fault=FaultSpec(kind="mshr_full", period=2),
        ))
        dropped = (faulted.pf_l1d.dropped_mshr_full
                   + faulted.pf_l2.dropped_mshr_full)
        clean_dropped = (clean.pf_l1d.dropped_mshr_full
                         + clean.pf_l2.dropped_mshr_full)
        assert dropped > clean_dropped
        assert check_invariants(faulted) == []

    def test_pq_pressure_drops_prefetches_coherently(self):
        clean = run_job(JobSpec(trace=TRACE, l1d="berti", scale=SCALE))
        faulted = run_job(JobSpec(
            trace=TRACE, l1d="berti", scale=SCALE,
            fault=FaultSpec(kind="pq_full", period=2),
        ))
        assert (faulted.pf_l1d.dropped_queue_full
                > clean.pf_l1d.dropped_queue_full)
        assert check_invariants(faulted) == []

    def test_degraded_run_still_makes_progress(self):
        faulted = run_job(JobSpec(
            trace=TRACE, l1d="berti", scale=SCALE,
            fault=FaultSpec(kind="mshr_full", period=2),
        ))
        assert faulted.instructions > 0 and faulted.ipc > 0


class TestInvariantChecker:
    @pytest.fixture(scope="class")
    def clean(self):
        return run_job(JobSpec(trace=TRACE, l1d="berti", scale=SCALE))

    def test_clean_run_passes(self, clean):
        assert check_invariants(clean) == []

    def test_negative_counter_flagged(self, clean):
        bad = dataclasses.replace(clean, dram_reads=-1)
        assert any("dram_reads" in v for v in check_invariants(bad))

    def test_misses_exceeding_accesses_flagged(self, clean):
        bad = dataclasses.replace(
            clean, l1d_demand_misses=clean.l1d_demand_accesses + 1
        )
        assert any("hits + misses" in v for v in check_invariants(bad))

    def test_late_exceeding_useful_flagged(self, clean):
        pf = dataclasses.replace(clean.pf_l1d, late=clean.pf_l1d.useful + 1)
        bad = dataclasses.replace(clean, pf_l1d=pf)
        assert any("late" in v for v in check_invariants(bad))

    def test_phantom_useful_flagged(self, clean):
        """More useful prefetches than issues + carryover is impossible."""
        pf = dataclasses.replace(
            clean.pf_l1d,
            useful=clean.pf_l1d.issued + clean.pf_l2.issued + 10 ** 6,
        )
        bad = dataclasses.replace(clean, pf_l1d=pf)
        assert any("carryover" in v for v in check_invariants(bad))

    def test_zero_cycles_with_instructions_flagged(self, clean):
        bad = dataclasses.replace(clean, cycles=0)
        violations = check_invariants(bad)
        assert any("instructions retired" in v for v in violations)
