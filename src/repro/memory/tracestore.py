"""Zero-copy shared trace store: mmap-backed columnar trace files.

The runner's workers historically rebuilt every trace from its
``(name, scale)`` catalog entry — deterministic, but each worker of a
parallel campaign pays the full generation cost per job (and on some
platforms the records would otherwise be pickled across the process
boundary).  A *trace store* is the same columnar layout
:class:`~repro.workloads.trace.Trace` holds in RAM (six ``int64``
columns, one per field plus the precomputed line-address column),
serialised once by a converter and then **memory-mapped read-only** by
every worker: page-cache pages are shared between all processes on the
host, loading is O(1), and no per-job parsing or pickling happens at
all.

File layout (everything little-endian, pinned by an explicit byte-order
sentinel)::

    offset 0   magic            8 bytes  b"BERTITRC"
    offset 8   version          u32      FORMAT_VERSION
    offset 12  meta length      u32      bytes of UTF-8 JSON metadata
    offset 16  endian sentinel  u64      0x0102030405060708
    offset 24  record count     u64
    offset 32  metadata         meta-length bytes of JSON
               (zero padding to the next 8-byte boundary)
               ips              n × int64
               addrs            n × int64
               writes           n × int64 (0/1)
               gaps             n × int64
               deps             n × int64
               lines            n × int64 (addrs >> 6, precomputed)

Format version 2 adds a ``crc32`` field *inside* the metadata JSON — a
fixed-width hex CRC-32 of the entire column region — so the binary
header layout (and every offset above) is unchanged from version 1.
The CRC is **not** checked at open time: mapping stays O(1) and
zero-copy.  :meth:`MappedTrace.verify` is the opt-in deep check (used
by ``store_info``, the fuzzer's corruption matrix, and any client that
just pulled a store across a host boundary); it walks the pad bytes and
the column region once and raises a typed error with the first bad
offset.

Every malformed-input path raises the typed :class:`TraceStoreError`
(a :class:`~repro.errors.TraceError`, so the runner classifies it as a
permanent ``trace`` failure, not a retryable crash).

Stores are validated *at conversion time* (:func:`write_trace_store`
runs ``Trace.validate`` and the file is written atomically), so
:meth:`MappedTrace.validate` only re-checks structural integrity —
that is what keeps the worker's per-job cost independent of the trace
length.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.workloads.trace import Trace

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "MappedTrace",
    "TraceStoreError",
    "ensure_store",
    "file_digest",
    "load_trace_store",
    "store_info",
    "store_path",
    "write_trace_store",
]

MAGIC = b"BERTITRC"
FORMAT_VERSION = 2
ENDIAN_SENTINEL = 0x0102030405060708

#: magic, version, meta length, endian sentinel, record count.
_HEADER = struct.Struct("<8sIIQQ")
_COLUMNS = ("ips", "addrs", "writes", "gaps", "deps", "lines")
_ITEM = 8  # int64


class TraceStoreError(TraceError):
    """A trace-store file is missing, truncated, or corrupt."""


def _identity_bytes(name: str, suite: str, description: str) -> bytes:
    """Canonical encoding of the identity fields folded into the CRC.

    Covering these makes a bit flip inside the metadata *values* (trace
    renamed, suite relabelled) detectable by :meth:`MappedTrace.verify`
    even though the checksum itself lives in the same JSON object —
    the CRC field is simply excluded from its own coverage.
    """
    return json.dumps([name, suite, description], sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True).encode("ascii")


def _check(cond: bool, message: str, path: Path) -> None:
    if not cond:
        raise TraceStoreError(message, trace=str(path), field="trace_store")


def store_path(directory: str | Path, trace: str, scale: float) -> Path:
    """Canonical store filename for a catalog ``(trace, scale)`` pair."""
    return Path(directory) / f"{trace}__s{scale}.trc"


def file_digest(path: str | Path, chunk: int = 1 << 20) -> str:
    """Streamed SHA-256 of a file's bytes (``sha256:<hex>``).

    This is the trace-identity half of the campaign service's content
    hash — and what ``repro trace-store info`` reports, so the two can
    never disagree about what was simulated.
    """
    import hashlib

    path = Path(path)
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as fh:
            while True:
                block = fh.read(chunk)
                if not block:
                    break
                digest.update(block)
    except OSError as exc:
        raise TraceStoreError(
            f"cannot digest trace store {path}: {exc}",
            trace=str(path), field="trace_store",
        ) from exc
    return f"sha256:{digest.hexdigest()}"


def write_trace_store(trace: Trace, path: str | Path) -> Path:
    """Serialise ``trace`` to ``path`` atomically; returns the path.

    The trace is validated first — a store on disk is trusted by
    :meth:`MappedTrace.validate`, so corruption must be caught here.
    An empty trace is refused: a zero-record store carries no work and
    is indistinguishable from a conversion that died before writing
    records, so it must never be produced (or silently simulated).
    """
    import zlib

    trace.validate()
    path = Path(path)
    _check(len(trace) > 0,
           f"refusing to write an empty trace store for {trace.name!r}: "
           f"0 records", path)
    columns = (
        trace._ips, trace._addrs, trace._writes, trace._gaps, trace._deps,
        trace.line_addresses(),
    )
    blobs = []
    crc = zlib.crc32(_identity_bytes(trace.name, trace.suite,
                                     trace.description))
    for col in columns:
        data = col.tobytes() if hasattr(col, "tobytes") else bytes(col)
        if sys.byteorder == "big":  # the format is little-endian
            from array import array

            swapped = array("q", data)
            swapped.byteswap()
            data = swapped.tobytes()
        blobs.append(data)
        crc = zlib.crc32(data, crc)
    meta = json.dumps({
        "name": trace.name,
        "suite": trace.suite,
        "description": trace.description,
        # Fixed-width hex so the metadata length (and thus every data
        # offset) never depends on the checksum's value.
        "crc32": f"{crc:08x}",
    }).encode("utf-8")
    pad = (-(_HEADER.size + len(meta))) % _ITEM
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, len(meta), ENDIAN_SENTINEL, len(trace)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".trc-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(meta)
            fh.write(b"\x00" * pad)
            for data in blobs:
                fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _parse_header(buf, path: Path):
    """Validate the fixed header; returns ``(n_records, meta, data_off)``."""
    _check(len(buf) >= _HEADER.size,
           f"trace store truncated: {len(buf)} bytes is smaller than the "
           f"{_HEADER.size}-byte header", path)
    magic, version, meta_len, sentinel, n_records = _HEADER.unpack_from(buf)
    _check(magic == MAGIC,
           f"not a trace store (magic {magic!r}, expected {MAGIC!r})", path)
    _check(version == FORMAT_VERSION,
           f"unsupported trace-store version {version} "
           f"(this build reads version {FORMAT_VERSION})", path)
    _check(sentinel == ENDIAN_SENTINEL,
           "endianness mismatch: store was written with the opposite byte "
           "order (sentinel 0x%016x)" % sentinel, path)
    meta_end = _HEADER.size + meta_len
    _check(len(buf) >= meta_end,
           f"trace store truncated inside metadata "
           f"({len(buf)} bytes, metadata ends at {meta_end})", path)
    try:
        meta = json.loads(bytes(buf[_HEADER.size:meta_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceStoreError(
            f"corrupt trace-store metadata: {exc}",
            trace=str(path), field="trace_store",
        ) from exc
    _check(isinstance(meta, dict), "trace-store metadata is not an object",
           path)
    data_off = meta_end + ((-meta_end) % _ITEM)
    expected = data_off + len(_COLUMNS) * n_records * _ITEM
    _check(len(buf) == expected,
           f"trace store truncated or oversized: {len(buf)} bytes on disk, "
           f"header promises {expected} ({n_records} records)", path)
    _check(n_records > 0,
           "trace store holds 0 records: an empty store cannot drive a "
           "simulation and is refused at open time", path)
    crc = meta.get("crc32")
    _check(isinstance(crc, str) and len(crc) == 8
           and all(c in "0123456789abcdef" for c in crc),
           f"trace-store metadata is missing its crc32 integrity field "
           f"(version-{FORMAT_VERSION} stores carry a fixed-width hex "
           f"CRC of the column region); got {crc!r}", path)
    return n_records, meta, data_off, meta_end


class MappedTrace(Trace):
    """A read-only :class:`Trace` whose columns live in a shared mmap.

    Behaves exactly like the trace the converter serialised — the
    simulation hot loop iterates the same 64-bit values — but the
    columns are ``memoryview`` casts into page-cache memory shared by
    every process mapping the same store.  Mutation APIs (``append`` /
    ``extend``) are unavailable by construction.

    On a big-endian host the zero-copy contract cannot hold (the store
    format is little-endian), so :func:`load_trace_store` refuses with a
    typed error rather than silently copying.
    """

    __slots__ = ("path", "_mm", "_meta_end", "_data_off", "_stored_crc")

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        if sys.byteorder == "big":
            raise TraceStoreError(
                "trace stores are little-endian; zero-copy mapping is not "
                "supported on big-endian hosts",
                trace=str(path), field="trace_store",
            )
        try:
            with open(path, "rb") as fh:
                if os.fstat(fh.fileno()).st_size == 0:
                    # mmap would refuse a zero-length file with an
                    # unhelpful ValueError; say what actually happened.
                    raise TraceStoreError(
                        f"trace store is zero-length: {path} (truncated "
                        f"or never written)",
                        trace=str(path), field="trace_store",
                    )
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError as exc:
            raise TraceStoreError(
                f"trace store not found: {path}",
                trace=str(path), field="trace_store",
            ) from exc
        except (OSError, ValueError) as exc:
            raise TraceStoreError(
                f"cannot map trace store {path}: {exc}",
                trace=str(path), field="trace_store",
            ) from exc
        head = memoryview(mm)
        try:
            n_records, meta, data_off, meta_end = _parse_header(head, path)
        except BaseException:
            head.release()  # an exported view blocks mmap.close()
            mm.close()
            raise
        head.release()
        self.path = path
        self._mm = mm
        self._meta_end = meta_end
        self._data_off = data_off
        self._stored_crc = int(meta["crc32"], 16)
        self.name = meta.get("name", path.stem)
        self.suite = meta.get("suite", "")
        self.description = meta.get("description", "")
        view = memoryview(mm)
        span = n_records * _ITEM
        cols = []
        for i in range(len(_COLUMNS)):
            start = data_off + i * span
            cols.append(view[start:start + span].cast("q"))
        (self._ips, self._addrs, self._writes, self._gaps, self._deps,
         self._lines) = cols

    # -- read-only contract -------------------------------------------

    def append(self, *args, **kwargs) -> None:  # pragma: no cover - guard
        raise TraceStoreError(
            "mapped traces are read-only", trace=self.name,
            field="trace_store",
        )

    def extend(self, records) -> None:
        raise TraceStoreError(
            "mapped traces are read-only", trace=self.name,
            field="trace_store",
        )

    def validate(self) -> None:
        """Structural re-check only — O(1), not a record scan.

        Record-level validation ran in :func:`write_trace_store`; the
        store is immutable (written atomically, mapped read-only), so
        the worker does not re-pay a linear scan per job.  The header
        was fully re-verified when this object mapped the file.
        """

    def verify(self) -> None:
        """Deep integrity check of the mapped bytes (opt-in, O(n)).

        Opening a store stays O(1); this walks the file once and raises
        :class:`TraceStoreError` with the first bad offset when any
        byte of the pad region or the column region disagrees with the
        checksum the converter recorded.  The header and metadata need
        no checksum: every header field is individually pinned at open
        time and the file-size equation cross-checks the lengths.
        """
        import zlib

        view = memoryview(self._mm)
        try:
            pad = bytes(view[self._meta_end:self._data_off])
            if any(pad):
                bad = self._meta_end + next(
                    i for i, b in enumerate(pad) if b)
                raise TraceStoreError(
                    f"trace store {self.path} corrupt: non-zero pad byte "
                    f"at offset {bad} (pad region "
                    f"[{self._meta_end}, {self._data_off}) must be zero)",
                    trace=str(self.path), field="trace_store",
                )
            actual = zlib.crc32(
                view[self._data_off:],
                zlib.crc32(_identity_bytes(self.name, self.suite,
                                           self.description)),
            )
            if actual != self._stored_crc:
                raise TraceStoreError(
                    f"trace store {self.path} corrupt: identity fields + "
                    f"column region (offset {self._data_off}..{len(view)}) "
                    f"have CRC32 {actual:08x}, metadata recorded "
                    f"{self._stored_crc:08x}",
                    trace=str(self.path), field="trace_store",
                )
        finally:
            view.release()

    def close(self) -> None:
        """Drop our column views and unmap (tests; workers just exit).

        If a caller still holds a column view, the unmap is deferred to
        garbage collection of that view — ``mmap`` refuses to close with
        live exports, and an mmap lingering until its last reader drops
        is exactly the zero-copy contract.
        """
        empty = memoryview(b"").cast("q")
        self._ips = self._addrs = self._writes = empty
        self._gaps = self._deps = self._lines = empty
        try:
            self._mm.close()
        except BufferError:
            pass

    def __reduce__(self):
        # Pickling ships the *path*: the receiving process re-maps the
        # store (sharing page cache) instead of serialising the records.
        return (load_trace_store, (str(self.path),))


def load_trace_store(path: str | Path) -> MappedTrace:
    """Map a trace store read-only; raises :class:`TraceStoreError`."""
    return MappedTrace(path)


def store_info(path: str | Path) -> Dict[str, object]:
    """Header + metadata summary of a store file (the ``info`` CLI)."""
    path = Path(path)
    t = load_trace_store(path)
    try:
        t.verify()  # info is a diagnostic: pay the deep check
        return {
            "path": str(path),
            "version": FORMAT_VERSION,
            "name": t.name,
            "suite": t.suite,
            "description": t.description,
            "records": len(t),
            "bytes": path.stat().st_size,
            "crc32": f"{t._stored_crc:08x}",
            "digest": file_digest(path),
        }
    finally:
        t.close()


def ensure_store(
    directory: str | Path, trace: str, scale: float,
    resolve=None,
) -> Path:
    """Convert ``(trace, scale)`` into ``directory`` unless already there.

    The parent process calls this once per unique trace before a
    campaign; workers then only ever map.  An existing file is trusted
    (stores are immutable and written atomically), so repeated campaigns
    share one conversion.
    """
    path = store_path(directory, trace, scale)
    if path.exists():
        return path
    if resolve is None:
        from repro.workloads.catalog import resolve_trace as resolve
    return write_trace_store(resolve(trace, scale), path)


def attach_trace_stores(jobs: List, directory: str | Path) -> List:
    """Rewrite runner jobs to carry a mapped-store path.

    Converts each unique ``(trace, scale)`` once (parent-side), then
    returns copies of the :class:`~repro.runner.jobs.JobSpec` entries
    with ``trace_path`` set.  Non-JobSpec jobs pass through untouched.
    ``trace_path`` is excluded from the job key, so journals written
    without a store replay cleanly against a campaign that uses one.
    """
    import dataclasses

    from repro.runner.jobs import JobSpec

    cache: Dict[tuple, str] = {}
    out = []
    for job in jobs:
        if not isinstance(job, JobSpec):
            out.append(job)
            continue
        key = (job.trace, job.scale)
        if key not in cache:
            cache[key] = str(ensure_store(directory, job.trace, job.scale))
        out.append(dataclasses.replace(job, trace_path=cache[key]))
    return out
