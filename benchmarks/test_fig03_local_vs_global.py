"""Figure 3 (and §II-B motivation): per-IP local deltas vs. one global
delta on the mcf-like trace.

The paper shows BOP's single global delta (+62 for mcf-1554B) covers ~2 %
of accesses while Berti's per-IP deltas give high coverage.  We reproduce
the comparison: BOP (global) vs. Berti (local) coverage and speedup on
mcf_s-1554B, plus the per-IP deltas Berti actually selected.
"""

from common import SCALE, once, run, save_report

from repro.analysis.report import format_table
from repro.core.berti import BertiPrefetcher
from repro.core.delta_table import STATUS_NAMES
from repro.prefetchers.bop import BOPPrefetcher
from repro.simulator.engine import simulate
from repro.workloads.spec_like import mcf_s_1554


def test_fig03_local_deltas_beat_global(benchmark):
    def compute():
        trace = mcf_s_1554(SCALE)
        base = run(trace, "ip_stride")
        none = run(trace, "none")
        bop = simulate(trace, l1d_prefetcher=BOPPrefetcher())
        berti_pf = BertiPrefetcher()
        berti = simulate(trace, l1d_prefetcher=berti_pf)

        def coverage(r):
            if none.l1d_demand_misses == 0:
                return 0.0
            covered = none.l1d_demand_misses - r.l1d_demand_misses
            return max(0.0, covered / none.l1d_demand_misses)

        rows = [
            ["bop (global delta)", bop.speedup_over(base), coverage(bop),
             bop.pf_l1d.accuracy],
            ["berti (local deltas)", berti.speedup_over(base),
             coverage(berti), berti.pf_l1d.accuracy],
        ]
        # Dump the per-IP deltas Berti selected (the gray lines of Fig 3).
        deltas = []
        for ip in (0x402DC7, 0x402E10, 0x403112):
            selected = [
                (d, STATUS_NAMES[s])
                for d, s in berti_pf.deltas.prefetch_deltas(ip)
            ]
            deltas.append([hex(ip), str(selected[:6])])
        return rows, deltas

    (rows, deltas) = once(benchmark, compute)
    text = format_table(
        ["prefetcher", "speedup vs ip-stride", "L1D coverage", "accuracy"],
        rows,
        title=(
            "Figure 3 — global (BOP) vs local (Berti) deltas on mcf-1554B\n"
            "(paper: BOP covers ~2%, Berti covers most accesses)"
        ),
    )
    text += "\n\nBerti per-IP selected deltas:\n" + format_table(
        ["IP", "deltas (delta, tier)"], deltas
    )
    save_report("fig03_local_vs_global", text)

    bop_row, berti_row = rows
    assert berti_row[2] > bop_row[2] + 0.2          # far higher coverage
    assert berti_row[1] > bop_row[1]                # and higher speedup
    assert any(d for __, d in deltas)               # per-IP deltas differ
