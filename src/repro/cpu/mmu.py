"""MMU: virtual→physical mapping, TLB hierarchy, and page-walk cost.

The paper's modified ChampSim models a detailed address-translation path
(L1 dTLB → STLB → page walk accelerated by paging-structure caches,
PSCL2–PSCL5).  We model:

* a deterministic page allocator that assigns physical pages to virtual
  pages on first touch, scrambled so that virtually contiguous pages are
  *not* physically contiguous (this is why L1D prefetchers that operate on
  virtual addresses can cross pages while L2 prefetchers cannot);
* an L1 dTLB and an STLB with the Table II geometries;
* a fixed page-walk penalty standing in for the PSCL-accelerated walk.
  Table II's PSCLs hit overwhelmingly for the workloads modelled, so the
  walk cost is a constant near the PSCL2-hit path (one memory access).

Demand translations always succeed (walks fill both TLBs).  Prefetch
translations use :meth:`translate_prefetch`, which only probes the STLB
and returns ``None`` on a miss so the caller drops the request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.memory.address import PAGE_BITS, LINE_BITS
from repro.cpu.tlb import TLB

_LINES_PER_PAGE_BITS = PAGE_BITS - LINE_BITS
_PAGE_OFFSET_MASK = (1 << _LINES_PER_PAGE_BITS) - 1


@dataclass
class MMUStats:
    walks: int = 0
    dropped_prefetch_translations: int = 0

    def reset(self) -> None:
        self.walks = 0
        self.dropped_prefetch_translations = 0


class MMU:
    """Translation machinery for one core."""

    def __init__(
        self,
        dtlb_entries: int = 64,
        dtlb_ways: int = 4,
        dtlb_latency: int = 1,
        stlb_entries: int = 2048,
        stlb_ways: int = 16,
        stlb_latency: int = 8,
        page_walk_latency: int = 60,
        asid: int = 0,
    ) -> None:
        self.dtlb = TLB("dtlb", dtlb_entries, dtlb_ways, dtlb_latency)
        self.stlb = TLB("stlb", stlb_entries, stlb_ways, stlb_latency)
        self.page_walk_latency = page_walk_latency
        self.stats = MMUStats()
        self._page_table: Dict[int, int] = {}
        self._next_ppage = 1
        # Mix in the address-space id so different cores of a multi-core
        # mix never share physical pages.
        self._asid = asid

    # ------------------------------------------------------------------

    def _physical_page(self, vpage: int) -> int:
        """First-touch allocation with a scrambling permutation."""
        ppage = self._page_table.get(vpage)
        if ppage is None:
            # Feistel-ish scramble of the allocation counter: physically
            # non-contiguous, deterministic across runs.
            n = self._next_ppage
            self._next_ppage += 1
            scrambled = (n * 2654435761) & 0xFFFFF
            ppage = (self._asid << 20) | scrambled ^ (n >> 8)
            self._page_table[vpage] = ppage
        return ppage

    def translate_demand(self, vline: int) -> Tuple[int, int]:
        """Translate a demand access.

        Returns ``(physical_line, translation_latency_cycles)``.  Fills
        the dTLB/STLB on misses and charges the walk penalty when both
        miss.
        """
        vpage = vline >> _LINES_PER_PAGE_BITS
        offset = vline & _PAGE_OFFSET_MASK

        # dTLB hit path inlined (runs once per demand access): identical
        # bookkeeping to TLB.lookup — access/hit counters and MRU bump.
        dtlb = self.dtlb
        dtlb_stats = dtlb.stats
        dtlb_stats.accesses += 1
        ppage = dtlb._map.get(vpage)
        if ppage is not None:
            entries = dtlb._sets[vpage % dtlb.num_sets]
            for i, (vp, _pp) in enumerate(entries):
                if vp == vpage:
                    entries.append(entries.pop(i))  # move to MRU
                    break
            dtlb_stats.hits += 1
            return (ppage << _LINES_PER_PAGE_BITS) | offset, dtlb.latency

        latency = self.dtlb.latency + self.stlb.latency
        ppage = self.stlb.lookup(vpage)
        if ppage is None:
            ppage = self._physical_page(vpage)
            self.stats.walks += 1
            latency += self.page_walk_latency
            self.stlb.insert(vpage, ppage)
        self.dtlb.insert(vpage, ppage)
        return (ppage << _LINES_PER_PAGE_BITS) | offset, latency

    def translate_prefetch(self, vline: int) -> Optional[int]:
        """Translate a prefetch target via the STLB only.

        Returns the physical line, or ``None`` when the STLB misses (the
        prefetch is then dropped, per paper §III-B).
        """
        # Runs once per prefetch suggestion: the TLB probe bookkeeping is
        # inlined here (identical counters to TLB.probe) to avoid two
        # function calls on this hot path.  The hierarchy's kernel issue
        # loop additionally inlines this STLB-hit path itself and falls
        # back to _translate_prefetch_cold below, so the counter
        # bookkeeping must stay split exactly this way.
        vpage = vline >> _LINES_PER_PAGE_BITS
        stlb_stats = self.stlb.stats
        stlb_stats.prefetch_probes += 1
        ppage = self.stlb._map.get(vpage)
        if ppage is None:
            return self._translate_prefetch_cold(vline, vpage)
        stlb_stats.prefetch_probe_hits += 1
        return (ppage << _LINES_PER_PAGE_BITS) | (vline & _PAGE_OFFSET_MASK)

    def _translate_prefetch_cold(
        self, vline: int, vpage: int
    ) -> Optional[int]:
        """STLB-miss tail of :meth:`translate_prefetch` (probes counted).

        Also allow a dTLB hit to serve the translation; ChampSim's L1D
        prefetches consult the full TLB path available at L1.
        """
        dtlb_stats = self.dtlb.stats
        dtlb_stats.prefetch_probes += 1
        ppage = self.dtlb._map.get(vpage)
        if ppage is None:
            self.stats.dropped_prefetch_translations += 1
            return None
        dtlb_stats.prefetch_probe_hits += 1
        return (ppage << _LINES_PER_PAGE_BITS) | (vline & _PAGE_OFFSET_MASK)

    def prewarm(self, vlines) -> None:
        """Install STLB translations for the pages of ``vlines``.

        Emulates the steady state after the paper's 50 M-instruction
        warmup: for workloads whose footprint fits the STLB reach
        (2048 × 4 KB = 8 MB), every page is already mapped long before
        measurement starts.  Larger footprints still overflow the STLB
        via its normal LRU replacement.
        """
        seen = set()
        for vline in vlines:
            vpage = vline >> _LINES_PER_PAGE_BITS
            if vpage in seen:
                continue
            seen.add(vpage)
            self.stlb.insert(vpage, self._physical_page(vpage))

    def reset_stats(self) -> None:
        self.stats.reset()
        self.dtlb.stats.reset()
        self.stlb.stats.reset()
