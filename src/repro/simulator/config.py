"""System configuration mirroring Table II of the paper.

The defaults reproduce the baseline system: a Sunny Cove-like 4 GHz core,
48 KB L1D with a 24-entry IP-stride prefetcher as the *baseline* L1D
prefetcher, 512 KB SRRIP L2, 2 MB/core DRRIP LLC, one DDR5-6400 channel
per four cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.core_model import CoreConfig
from repro.memory.dram import DRAMConfig


@dataclass
class CacheConfig:
    size_bytes: int
    ways: int
    latency: int
    replacement: str = "lru"


@dataclass
class SystemConfig:
    """All Table II knobs in one place."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(48 * 1024, 12, 5, "lru")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 10, "srrip")
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 20, "drrip")
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    l1d_mshr: int = 16
    l2_mshr: int = 32
    pq_size: int = 16

    dtlb_entries: int = 64
    dtlb_ways: int = 4
    dtlb_latency: int = 1
    stlb_entries: int = 2048
    stlb_ways: int = 16
    stlb_latency: int = 8
    page_walk_latency: int = 60

    num_cores: int = 1
    llc_per_core: bool = True  # 2 MB/core: multi-core scales LLC size

    def with_dram_mtps(self, mtps: int) -> "SystemConfig":
        """A copy with a different DRAM transfer rate (Fig. 16/17)."""
        return replace(self, dram=replace(self.dram, mtps=mtps))

    def scaled_llc_size(self) -> int:
        if self.llc_per_core:
            return self.llc.size_bytes * self.num_cores
        return self.llc.size_bytes


def default_config() -> SystemConfig:
    """The paper's baseline single-core configuration."""
    return SystemConfig()
