"""Semantic tests for the GAP kernel recorders: the traces must reflect
what the kernels actually do."""

import pytest

from repro.workloads import gap as g


@pytest.fixture(scope="module")
def kron():
    return g.GRAPHS["kron"](0.05)


class TestRecorderSemantics:
    def test_bfs_visits_only_reachable(self, kron):
        offsets, edges = kron
        trace = g.bfs_trace(kron, "t", 3000)
        # Every recorded edge index must be a valid CSR position.
        for ip, vaddr, __, ___, ____ in trace.records:
            if ip == g.IP_EDGES:
                e = (vaddr - 0x2800_0000) // 64 * 16
                assert 0 <= e <= len(edges)

    def test_value_gathers_are_dependent(self, kron):
        trace = g.pagerank_trace(kron, "t", 2000)
        values = [r for r in trace.records if r[0] == g.IP_VALUES]
        assert values and all(r[4] == 1 for r in values)

    def test_updates_are_writes(self, kron):
        trace = g.cc_trace(kron, "t", 2000)
        updates = [r for r in trace.records if r[0] == g.IP_UPDATE]
        assert updates and all(r[2] for r in updates)

    def test_frontier_is_sequential_per_round(self, kron):
        trace = g.bc_trace(kron, "t", 2000)
        lines = [r[1] >> 6 for r in trace.records if r[0] == g.IP_FRONTIER]
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        # Mostly 0 (8 entries/line) or +1 with occasional resets.
        regular = sum(1 for d in deltas if d in (0, 1))
        assert regular >= len(deltas) * 0.8

    def test_region_separation(self, kron):
        """Each logical array lives in its own address region (updates
        write the values array, so those two IPs share one region)."""
        trace = g.sssp_trace(kron, "t", 2000)
        regions = {}
        for ip, vaddr, *_ in trace.records:
            regions.setdefault(ip, set()).add(vaddr >> 27)
        distinct_ips = [g.IP_OFFSETS, g.IP_EDGES, g.IP_VALUES,
                        g.IP_PARENT, g.IP_FRONTIER]
        seen = [frozenset(regions[ip]) for ip in distinct_ips
                if ip in regions]
        assert len(set(seen)) == len(seen)
        if g.IP_UPDATE in regions:
            assert regions[g.IP_UPDATE] == regions[g.IP_VALUES]

    def test_distinct_history_sets_for_hot_ips(self):
        """The kernel IPs were chosen to avoid Berti history-set
        collisions (a representative, documented choice)."""
        from repro.core.history_table import HistoryTable
        h = HistoryTable()
        ips = [g.IP_OFFSETS, g.IP_EDGES, g.IP_VALUES, g.IP_PARENT,
               g.IP_FRONTIER, g.IP_UPDATE]
        sets = {h._set_index(ip) for ip in ips}
        assert len(sets) == len(ips)


class TestGraphShapes:
    def test_kron_is_skewed(self, kron):
        offsets, edges = kron
        degrees = sorted(
            (offsets[i + 1] - offsets[i] for i in range(len(offsets) - 1)),
            reverse=True,
        )
        # Power-law-ish: the top 1% of vertices hold a large share.
        top = sum(degrees[: max(1, len(degrees) // 100)])
        assert top > len(edges) * 0.05

    def test_urand_is_flat(self):
        offsets, edges = g.GRAPHS["urand"](0.05)
        degrees = [offsets[i + 1] - offsets[i]
                   for i in range(len(offsets) - 1)]
        assert max(degrees) < 40  # no power-law hubs

    def test_road_is_local(self):
        offsets, edges = g.GRAPHS["road"](0.05)
        n = len(offsets) - 1
        local = 0
        total = 0
        for u in range(0, n, 7):
            for e in range(offsets[u], offsets[u + 1]):
                total += 1
                if abs(edges[e] - u) <= 2:
                    local += 1
        assert total and local / total > 0.8

    def test_scramble_spreads_hubs(self, kron):
        """Graph500-style label scrambling: hub ids must not cluster at
        the low end of the id space."""
        offsets, __ = kron
        n = len(offsets) - 1
        degrees = [(offsets[i + 1] - offsets[i], i) for i in range(n)]
        top_ids = [i for __, i in sorted(degrees, reverse=True)[:50]]
        assert max(top_ids) > n // 2
