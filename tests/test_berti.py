"""Unit and behavioural tests for the Berti prefetcher itself."""

import pytest

from dataclasses import replace

from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.core.delta_table import L1D_PREF
from repro.prefetchers.base import FILL_L1, FILL_L2, AccessInfo, FillInfo

IP = 0x402DC7


def access(line, hit=False, now=0, mshr=0.0, ip=IP, prefetch_hit=False):
    return AccessInfo(
        ip=ip, line=line, hit=hit, prefetch_hit=prefetch_hit, now=now,
        mshr_occupancy=mshr,
    )


def train_stride(pf, stride=2, count=40, period=400, latency=100, start=0):
    """Feed a miss stream with inter-miss spacing > latency so several
    deltas are timely, driving full learning phases."""
    line = start
    for i in range(count):
        now = i * period
        pf.on_access(access(line, hit=False, now=now))
        pf.on_fill(FillInfo(line=line, now=now + latency, latency=latency,
                            was_prefetch=False, ip=IP))
        line += stride


class TestTraining:
    def test_learns_stride_deltas(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=2)
        snapshot = dict(
            (d, s) for d, __, s in pf.deltas.entry_snapshot(IP)
        )
        assert snapshot.get(2) == L1D_PREF

    def test_prediction_after_training(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=2)
        reqs = pf.on_access(access(1000, hit=True, now=100_000))
        targets = {r.line for r in reqs}
        assert 1002 in targets

    def test_prefetch_fill_does_not_train(self):
        pf = BertiPrefetcher()
        pf.on_access(access(10, hit=False, now=0))
        before = pf.history.searches
        pf.on_fill(FillInfo(line=10, now=100, latency=100,
                            was_prefetch=True, ip=IP))
        assert pf.history.searches == before

    def test_zero_latency_fill_skipped(self):
        """Latency 0 marks a 12-bit overflow: no search (paper §III-C)."""
        pf = BertiPrefetcher()
        pf.on_access(access(10, hit=False, now=0))
        before = pf.history.searches
        pf.on_fill(FillInfo(line=12, now=100, latency=0,
                            was_prefetch=False, ip=IP))
        assert pf.history.searches == before

    def test_latency_overflow_clamped(self):
        pf = BertiPrefetcher()
        assert pf._clamp_latency(5000) == 0
        assert pf._clamp_latency(4095) == 4095
        assert pf._clamp_latency(-3) == 0

    def test_prefetch_hit_trains(self):
        pf = BertiPrefetcher()
        pf.history.insert(IP, 0, 0)
        before = pf.history.searches
        pf.on_prefetch_hit(access(10, hit=True, now=500, prefetch_hit=True),
                           pf_latency=100)
        assert pf.history.searches == before + 1
        assert pf.history.occupancy() >= 2  # the hit was also recorded


class TestPredictionGating:
    def test_mshr_watermark_degrades_to_l2(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=2)
        low = pf.on_access(access(500, hit=True, now=99_000, mshr=0.1))
        high = pf.on_access(access(600, hit=True, now=99_500, mshr=0.9))
        assert any(r.fill_level == FILL_L1 for r in low)
        assert all(r.fill_level == FILL_L2 for r in high)

    def test_untrained_ip_predicts_nothing(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=2)
        assert pf.on_access(access(100, hit=True, ip=IP + 8)) == []

    def test_negative_target_suppressed(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=-2, start=10_000)
        reqs = pf.on_access(access(1, hit=True, now=99_000))
        assert all(r.line >= 0 for r in reqs)


class TestCrossPage:
    def test_cross_page_enabled_by_default(self):
        pf = BertiPrefetcher()
        train_stride(pf, stride=40)  # large delta crosses 4 KB pages
        reqs = pf.on_access(access(60, hit=True, now=99_000))
        assert any(r.line // 64 != 60 // 64 for r in reqs)

    def test_cross_page_suppression(self):
        cfg = replace(BertiConfig(), cross_page=False)
        pf = BertiPrefetcher(cfg)
        train_stride(pf, stride=40)
        reqs = pf.on_access(access(60, hit=True, now=99_000))
        assert all(r.line // 64 == 60 // 64 for r in reqs)
        assert pf.cross_page_suppressed > 0


class TestHardwareBudget:
    def test_storage_matches_config(self):
        pf = BertiPrefetcher()
        assert pf.storage_bits() == BertiConfig().storage_bits()

    def test_reset_clears_learning(self):
        pf = BertiPrefetcher()
        train_stride(pf)
        pf.reset()
        assert pf.on_access(access(100, hit=True)) == []


class TestOutOfOrderRobustness:
    def test_reordered_stream_still_learned(self):
        """Paper §II-B: timely deltas see past accesses in any order, so a
        locally shuffled +1 stream still trains Berti."""
        pf = BertiPrefetcher()
        order = []
        base = 0
        for blk in range(30):
            a, b = base + blk * 2, base + blk * 2 + 1
            order.extend([b, a] if blk % 2 else [a, b])  # local swaps
        for i, line in enumerate(order):
            now = i * 400
            pf.on_access(access(line, hit=False, now=now))
            pf.on_fill(FillInfo(line=line, now=now + 100, latency=100,
                                was_prefetch=False, ip=IP))
        statuses = dict((d, s) for d, __, s in pf.deltas.entry_snapshot(IP))
        assert any(s == L1D_PREF for s in statuses.values())
