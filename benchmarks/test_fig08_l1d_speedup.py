"""Figure 8: geomean speedup of the L1D prefetchers per suite.

Paper reference (vs IP-stride): SPEC17 — Berti +11.6 %, IPCP +8.8 %,
MLOP +8.6 %; GAP — Berti +1.9 %, IPCP −2.9 %, MLOP −7.8 %; overall Berti
+8.5 % (i.e. +3.5 % over IPCP).
"""

from common import gap_traces, once, run_matrix, save_report, spec_traces

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]

PAPER = {
    "SPEC17": {"mlop": 1.086, "ipcp": 1.088, "berti": 1.116},
    "GAP": {"mlop": 0.922, "ipcp": 0.971, "berti": 1.019},
    "ALL": {"mlop": 1.03, "ipcp": 1.05, "berti": 1.085},
}


def test_fig08_l1d_speedups(benchmark):
    def compute():
        out = {}
        spec = run_matrix(spec_traces(), NAMES)
        gap = run_matrix(gap_traces(), NAMES)
        out["SPEC17"] = geomean_speedup(spec)
        out["GAP"] = geomean_speedup(gap)
        out["ALL"] = geomean_speedup({**spec, **gap})
        return out

    speeds = once(benchmark, compute)
    rows = []
    for suite in ("SPEC17", "GAP", "ALL"):
        for name in NAMES[1:]:
            rows.append([
                suite, name, PAPER[suite].get(name, float("nan")),
                speeds[suite][name],
            ])
    save_report(
        "fig08_l1d_speedup",
        format_table(
            ["suite", "prefetcher", "paper", "measured"],
            rows,
            title="Figure 8 — L1D prefetcher geomean speedup vs IP-stride",
        ),
    )

    # Shape assertions: Berti is the best L1D prefetcher on each suite
    # and overall, and it improves over the IP-stride baseline.
    for suite in ("SPEC17", "GAP", "ALL"):
        s = speeds[suite]
        assert s["berti"] >= max(s["mlop"], s["ipcp"]) - 0.07, (suite, s)
    assert speeds["ALL"]["berti"] > 1.02
    assert speeds["SPEC17"]["berti"] > 1.05
    assert speeds["GAP"]["berti"] >= 0.99
    # MLOP is the weakest on GAP (paper: −7.8 %).
    assert speeds["GAP"]["mlop"] == min(speeds["GAP"][n] for n in NAMES)
