"""Trace containers: the unit of work every experiment consumes.

A trace is an ordered sequence of memory accesses annotated with the
number of non-memory instructions preceding each access — the same
information a ChampSim trace carries after decoding.  Records:

``(ip, vaddr, is_write, gap, dep)``

* ``ip``   — instruction pointer of the memory instruction
* ``vaddr``— virtual byte address accessed
* ``is_write`` — store vs. load
* ``gap``  — non-memory instructions between the previous access and this
* ``dep``  — 0, or *d* when the address depends on the value loaded by the
  *d*-th previous memory record (pointer chasing / indirect indexing)

Traces are deliberately plain (lists of tuples) for simulation speed; the
:class:`Trace` wrapper adds metadata, statistics and (de)serialisation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

TraceRecord = Tuple[int, int, bool, int, int]


@dataclass
class Trace:
    """A named memory-access trace plus bookkeeping."""

    name: str
    records: List[TraceRecord] = field(default_factory=list)
    suite: str = ""           # "spec17", "gap", "cloudsuite", ...
    description: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def append(
        self,
        ip: int,
        vaddr: int,
        is_write: bool = False,
        gap: int = 0,
        dep: int = 0,
    ) -> None:
        self.records.append((ip, vaddr, is_write, gap, dep))

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self.records.extend(records)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions (memory + the gaps between them)."""
        return len(self.records) + sum(r[3] for r in self.records)

    @property
    def unique_ips(self) -> int:
        return len({r[0] for r in self.records})

    @property
    def unique_lines(self) -> int:
        return len({r[1] >> 6 for r in self.records})

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r[2]) / len(self.records)

    def footprint_bytes(self) -> int:
        """Approximate data footprint (unique lines × 64 B)."""
        return self.unique_lines * 64

    def validate(self) -> None:
        """Check every record is well-formed; raise ``TraceError`` if not.

        Guards the simulator against corrupted trace files (and is what
        the fault-injection harness's ``corrupt`` fault trips): negative
        addresses/IPs/gaps, or a ``dep`` pointing before the trace start.
        """
        from repro.errors import TraceError

        for i, (ip, vaddr, is_write, gap, dep) in enumerate(self.records):
            if ip < 0 or vaddr < 0 or gap < 0 or dep < 0:
                raise TraceError(
                    f"corrupt record {i}: negative field "
                    f"(ip={ip}, vaddr={vaddr}, gap={gap}, dep={dep})",
                    trace=self.name,
                )

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace over record indices [start, stop)."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            records=self.records[start:stop],
            suite=self.suite,
            description=self.description,
        )

    def repeated(self, times: int) -> "Trace":
        """The trace concatenated ``times`` times (multi-core replay)."""
        return Trace(
            name=self.name,
            records=self.records * times,
            suite=self.suite,
            description=self.description,
        )

    # ------------------------------------------------------------------
    # Serialisation (npz + json sidecar)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        path = Path(path)
        n = len(self.records)
        ips = np.empty(n, dtype=np.int64)
        addrs = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=np.bool_)
        gaps = np.empty(n, dtype=np.int32)
        deps = np.empty(n, dtype=np.int32)
        for i, (ip, va, w, g, d) in enumerate(self.records):
            ips[i], addrs[i], writes[i], gaps[i], deps[i] = ip, va, w, g, d
        np.savez_compressed(
            path, ips=ips, addrs=addrs, writes=writes, gaps=gaps, deps=deps
        )
        meta = {
            "name": self.name,
            "suite": self.suite,
            "description": self.description,
        }
        Path(str(path) + ".json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        data = np.load(path if path.suffix == ".npz" else str(path) + ".npz")
        meta_path = Path(str(path) + ".json")
        meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
        records = [
            (int(ip), int(va), bool(w), int(g), int(d))
            for ip, va, w, g, d in zip(
                data["ips"], data["addrs"], data["writes"], data["gaps"],
                data["deps"],
            )
        ]
        return cls(
            name=meta.get("name", path.stem),
            records=records,
            suite=meta.get("suite", ""),
            description=meta.get("description", ""),
        )


def interleave(traces: Sequence[Trace], name: str, chunk: int = 1) -> Trace:
    """Round-robin interleave several traces at ``chunk``-record granularity.

    Used to build patterns like CactuBSSN's hundreds of interleaved strided
    instructions, and heterogeneous phases within one synthetic benchmark.
    """
    out = Trace(name=name, suite=traces[0].suite if traces else "")
    iters = [iter(t.records) for t in traces]
    live = list(range(len(iters)))
    while live:
        next_live = []
        for idx in live:
            taken = 0
            for rec in iters[idx]:
                out.records.append(rec)
                taken += 1
                if taken >= chunk:
                    break
            if taken >= chunk:
                next_live.append(idx)
        live = next_live
    return out


def concatenate(traces: Sequence[Trace], name: str) -> Trace:
    """Phases executed back to back (program phase changes)."""
    out = Trace(name=name, suite=traces[0].suite if traces else "")
    for t in traces:
        out.records.extend(t.records)
    return out
