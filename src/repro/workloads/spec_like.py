"""SPEC CPU2017-like trace generators.

The paper's SPEC analysis names the access-pattern *class* of each
headline benchmark; these generators reproduce those classes so the
evaluation exercises the same prefetcher behaviours:

* ``mcf_s_1554`` — per-IP irregular-delta pointer chases (the paper's
  Figure 3 benchmark: BOP's global +62 delta covers ~2 %, Berti's local
  deltas cover most accesses; Berti's best SPEC result).
* ``mcf_s_782`` — three IPs issue 75 % of L1D accesses with distinct
  strides; their interleaving corrupts global-delta training (MLOP and
  IPCP lose 16–22 % there in the paper).
* ``lbm_2676`` — the +1, +2, +1, +2 stride alternation of IP 0x401cb0:
  zero IP-stride confidence, 100 %-coverage local deltas +3 and +6.
* ``cactuBSSN`` — hundreds of interleaved strided instructions walking
  one grid: the *global* stream is regular (MLOP/IPCP-GS win) while the
  per-IP state exceeds Berti's history capacity — the paper's one
  adversarial case for local deltas.
* plus stream/stencil/irregular generators covering the remaining
  memory-intensive mix (bwaves/fotonik-style streams, roms/wrf-style
  stencils, omnetpp/xalancbmk-style irregular).

All generators are deterministic given their ``seed``; ``scale``
multiplies the record count (1.0 ≈ 12k memory accesses).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.workloads.synthetic import (
    gather_indices,
    make_trace,
    pattern_stream,
    pointer_chase,
    random_access,
    strided_stream,
    temporal_sequence,
)
from repro.workloads.trace import Trace

_SUITE = "spec17"
_BASE = 0x1000_0000
_REGION = 0x0100_0000  # 16 MB between IP regions


def _n(scale: float, count: int) -> int:
    return max(64, int(count * scale))


def mcf_s_1554(scale: float = 1.0) -> Trace:
    """Pointer-heavy, per-IP consistent local deltas; Berti's best case."""
    n = _n(scale, 2400)
    parts = [
        # Dominant chase IPs, each with its own dominant delta.
        pointer_chase(0x402DC7, _BASE, [-1, -2, -3], n, gap=13, seed=11,
                      weights=[0.75, 0.20, 0.05], region_lines=6144),
        pointer_chase(0x402E10, _BASE + _REGION, [-1, -3, -2], n, gap=13,
                      seed=12, weights=[0.70, 0.25, 0.05],
                      region_lines=6144),
        pointer_chase(0x403112, _BASE + 2 * _REGION, [2, 1, 4], n, gap=13,
                      seed=13, weights=[0.75, 0.20, 0.05],
                      region_lines=6144),
        # A regular arc-array walk.
        strided_stream(0x401F00, _BASE + 3 * _REGION, 2, n, gap=13,
                       region_lines=6144),
        # Background noise the prefetchers should ignore.
        random_access(0x404000, _BASE + 4 * _REGION, 1 << 14, n // 2,
                      gap=13, seed=14),
    ]
    return make_trace(
        "mcf_s-1554B", parts, suite=_SUITE,
        description="per-IP local-delta chases (paper Fig. 3 benchmark)",
    )


def mcf_s_782(scale: float = 1.0) -> Trace:
    """Three stride IPs at 75 % of accesses; interleaving breaks global
    delta training (MLOP −16 %, IPCP −21.9 % in the paper)."""
    n = _n(scale, 3000)
    parts = [
        strided_stream(0x4049DE, _BASE, 3, n, gap=20, region_lines=8192),
        strided_stream(0x4049E5, _BASE + _REGION, 5, n, gap=20,
                       region_lines=8192),
        strided_stream(0x4049CC, _BASE + 2 * _REGION, 7, n, gap=20,
                       region_lines=8192),
        pattern_stream(0x404A10, _BASE + 3 * _REGION, [-2, -9, -1, -2], n,
                       gap=20, dep=1, region_lines=6144),
    ]
    return make_trace(
        "mcf_s-782B", parts, suite=_SUITE,
        description="three interleaved stride IPs dominate L1D accesses",
    )


def mcf_s_1536(scale: float = 1.0) -> Trace:
    """Low-predictability chase: nothing covers it well; prefetchers that
    keep issuing anyway (including, mildly, Berti) pay a small penalty."""
    n = _n(scale, 3600)
    parts = [
        pointer_chase(0x404200, _BASE, [-1, -17, 23, -5, 9, -40], n, gap=14,
                      seed=31, region_lines=6144),
        random_access(0x404280, _BASE + _REGION, 1 << 15, n, gap=14, seed=32,
                      dep=1),
        strided_stream(0x401F10, _BASE + 2 * _REGION, 1, n // 3, gap=14,
                       region_lines=6144),
    ]
    return make_trace(
        "mcf_s-1536B", parts, suite=_SUITE,
        description="irregular deltas with little coverable structure",
    )


def lbm_2676(scale: float = 1.0) -> Trace:
    """The +1,+2 alternation (§II-B): IP-stride gains no confidence, the
    local deltas +3/+6 give 100 % coverage."""
    n = _n(scale, 3600)
    parts = [
        pattern_stream(0x401CB0, _BASE, [1, 2], n, gap=24, region_lines=8192),
        pattern_stream(0x401CE4, _BASE + _REGION, [2, 1], n, gap=24,
                       region_lines=8192),
        pattern_stream(0x401D22, _BASE + 2 * _REGION, [1, 2, 1, 2], n, gap=24,
                       region_lines=8192),
        strided_stream(0x401E00, _BASE + 3 * _REGION, 3, n // 2, gap=24,
                       is_write=True, region_lines=6144),
    ]
    return make_trace(
        "lbm_s-2676B", parts, suite=_SUITE,
        description="+1,+2 alternating strides (local deltas +3/+6)",
    )


def cactuBSSN(scale: float = 1.0, num_ips: int = 160) -> Trace:
    """Hundreds of interleaved strided IPs over one grid sweep.

    Each instruction reads a fixed offset off a common walking pointer,
    so the *global* stream is dense and regular while tracking each IP
    locally would need tables far larger than Berti's (the paper: 1024
    sets × 1024 entries recover 22 %).
    """
    sweeps = _n(scale, 20000) // num_ips
    records = []
    stencil_base = _BASE
    for i in range(sweeps):
        for k in range(num_ips):
            ip = 0x420000 + 8 * k
            # IP k touches cell (i * num_ips + k); cells are 2 lines
            # apart (padded grid fields), so the global stream is a
            # dense +2-line sequence that global-delta prefetchers and
            # stream detectors cover, while each IP's own stride is
            # num_ips * 2 = 320 lines — far beyond what a 24-entry
            # IP-stride or Berti's 16-entry delta table can track
            # across 160 hot IPs.
            line_index = (i * num_ips + k) * 2
            records.append(
                (ip, stencil_base + line_index * 64, False, 20, 0)
            )
    trace = Trace(
        "cactuBSSN_s-2421B", records=records, suite=_SUITE,
        description="interleaved strided IPs; global deltas win",
    )
    return trace


def gcc_like(scale: float = 1.0) -> Trace:
    """Mixed regular/irregular compiler-style behaviour."""
    n = _n(scale, 2000)
    parts = [
        strided_stream(0x410100, _BASE, 1, n, gap=24, region_lines=6144),
        strided_stream(0x410200, _BASE + _REGION, 4, n, gap=24,
                       region_lines=6144),
        pattern_stream(0x410300, _BASE + 2 * _REGION, [-1, -2, -1, 5], n,
                       gap=24, dep=1, region_lines=8192),
        random_access(0x410400, _BASE + 3 * _REGION, 1 << 13, n, gap=24,
                      seed=42),
        pattern_stream(0x410500, _BASE + 4 * _REGION, [2, 3], n, gap=24,
                       region_lines=6144),
    ]
    return make_trace(
        "gcc_s-1850B", parts, suite=_SUITE,
        description="mixed strided and irregular compiler behaviour",
    )


def omnetpp_like(scale: float = 1.0) -> Trace:
    """Event-queue simulation: temporally repeating irregular walks."""
    rng = random.Random(51)
    lines = [rng.randrange(1 << 15) for _ in range(600)]
    n = _n(scale, 1500)
    parts = [
        temporal_sequence(0x411000, lines, max(2, n // len(lines)), gap=16),
        pattern_stream(0x411100, _BASE + _REGION, [-1, 3, -7], n, gap=16,
                       dep=1, region_lines=8192),
        strided_stream(0x411200, _BASE + 2 * _REGION, 2, n, gap=16,
                       region_lines=6144),
    ]
    return make_trace(
        "omnetpp_s-874B", parts, suite=_SUITE,
        description="repeating temporal sequences plus chases",
    )


def xalancbmk_like(scale: float = 1.0) -> Trace:
    """XML traversal: small hot set plus strided scans."""
    n = _n(scale, 2200)
    parts = [
        random_access(0x412000, _BASE, 1 << 12, n, gap=16, seed=61, dep=1),
        random_access(0x412050, _BASE + 3 * _REGION, 1 << 14, n, gap=16,
                      seed=62),
        strided_stream(0x412100, _BASE + _REGION, 1, n, gap=16,
                       region_lines=6144),
        pattern_stream(0x412200, _BASE + 2 * _REGION, [4, 1, 3], n // 2,
                       gap=16, region_lines=6144),
    ]
    return make_trace(
        "xalancbmk_s-700B", parts, suite=_SUITE,
        description="small hot set with strided scans",
    )


def bwaves_like(scale: float = 1.0) -> Trace:
    """Multi-stream dense solver: everything is a long unit/small stride."""
    n = _n(scale, 3000)
    parts = [
        strided_stream(0x413000 + 16 * k, _BASE + k * _REGION, s, n, gap=26,
                       region_lines=6144)
        for k, s in enumerate([1, 1, 2, 2])
    ]
    return make_trace(
        "bwaves_s-2609B", parts, suite=_SUITE,
        description="parallel dense streams",
    )


def fotonik3d_like(scale: float = 1.0) -> Trace:
    """FDTD sweep: streams plus a strided write-back stream."""
    n = _n(scale, 3000)
    parts = [
        strided_stream(0x414000, _BASE, 1, n, gap=26, region_lines=6144),
        strided_stream(0x414100, _BASE + _REGION, 1, n, gap=26,
                       region_lines=6144),
        strided_stream(0x414200, _BASE + 2 * _REGION, 1, n, gap=26,
                       is_write=True, region_lines=6144),
        pattern_stream(0x414300, _BASE + 3 * _REGION, [1, 1, 62], n, gap=26,
                       region_lines=6144),
    ]
    return make_trace(
        "fotonik3d_s-1176B", parts, suite=_SUITE,
        description="FDTD field sweeps",
    )


def roms_like(scale: float = 1.0) -> Trace:
    """Ocean-model stencil: unit strides with periodic row jumps."""
    n = _n(scale, 3000)
    row = 96  # lines per grid row
    parts = [
        pattern_stream(0x415000, _BASE, [1] * 11 + [row - 11], n, gap=24,
                       region_lines=6144),
        pattern_stream(0x415100, _BASE + _REGION, [1] * 7 + [row - 7], n,
                       gap=24, region_lines=6144),
        strided_stream(0x415200, _BASE + 2 * _REGION, row, n, gap=24,
                       region_lines=8192),
    ]
    return make_trace(
        "roms_s-1070B", parts, suite=_SUITE,
        description="stencil rows with periodic jumps",
    )


def wrf_like(scale: float = 1.0) -> Trace:
    """Weather stencil: several distinct strides, one IP each."""
    n = _n(scale, 2600)
    parts = [
        strided_stream(0x416000, _BASE, 1, n, gap=24, region_lines=6144),
        strided_stream(0x416100, _BASE + _REGION, 6, n, gap=24,
                       region_lines=8192),
        strided_stream(0x416200, _BASE + 2 * _REGION, 12, n, gap=24,
                       region_lines=8192),
        pattern_stream(0x416300, _BASE + 3 * _REGION, [2, 2, 2, 11], n,
                       gap=24, dep=1, region_lines=6144),
    ]
    return make_trace(
        "wrf_s-6673B", parts, suite=_SUITE,
        description="multi-stride weather stencil",
    )


def cam4_like(scale: float = 1.0) -> Trace:
    """Blocked physics kernel: strided blocks with block jumps."""
    n = _n(scale, 2600)
    parts = [
        pattern_stream(0x417000, _BASE, [2] * 15 + [200], n, gap=22,
                       region_lines=8192),
        strided_stream(0x417100, _BASE + _REGION, 2, n, gap=22,
                       region_lines=6144),
        random_access(0x417200, _BASE + 2 * _REGION, 1 << 13, n // 2,
                      gap=22, seed=81),
    ]
    return make_trace(
        "cam4_s-490B", parts, suite=_SUITE,
        description="blocked strided physics kernel",
    )


def pop2_like(scale: float = 1.0) -> Trace:
    """Ocean circulation: gathers driven by an index array."""
    rng = random.Random(91)
    n = _n(scale, 2400)
    indices = [rng.randrange(1 << 14) for _ in range(n)]
    parts = [
        strided_stream(0x418000, _BASE, 1, n, gap=16, region_lines=6144),
        gather_indices(0x418100, _BASE + _REGION, indices, gap=16, dep=1),
        pattern_stream(0x418200, _BASE + 2 * _REGION, [3, 3, 3, 15], n,
                       gap=16, region_lines=8192),
    ]
    return make_trace(
        "pop2_s-17B", parts, suite=_SUITE,
        description="index-driven gathers plus streams",
    )


GENERATORS: Dict[str, Callable[[float], Trace]] = {
    "mcf_s-1554B": mcf_s_1554,
    "mcf_s-782B": mcf_s_782,
    "mcf_s-1536B": mcf_s_1536,
    "lbm_s-2676B": lbm_2676,
    "cactuBSSN_s-2421B": cactuBSSN,
    "gcc_s-1850B": gcc_like,
    "omnetpp_s-874B": omnetpp_like,
    "xalancbmk_s-700B": xalancbmk_like,
    "bwaves_s-2609B": bwaves_like,
    "fotonik3d_s-1176B": fotonik3d_like,
    "roms_s-1070B": roms_like,
    "wrf_s-6673B": wrf_like,
    "cam4_s-490B": cam4_like,
    "pop2_s-17B": pop2_like,
}


def spec17_suite(scale: float = 1.0) -> List[Trace]:
    """All memory-intensive SPEC-like traces, deterministic order."""
    return [gen(scale) for gen in GENERATORS.values()]


def stream_trace(scale: float = 1.0) -> Trace:
    """A minimal quickstart trace (single strided stream)."""
    return make_trace(
        "stream", [strided_stream(0x400100, _BASE, 2, _n(scale, 4000), gap=10)],
        suite="demo", description="single strided stream",
    )
