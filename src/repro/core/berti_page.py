"""Per-page Berti — the DPC-3 ancestor of the MICRO 2022 prefetcher.

The paper (§I) notes "Our Berti prefetcher is inspired by Berti from
DPC-3 [46]", A. Ros's *"Berti: A per-page best-request-time delta
prefetcher"*.  That version selected timely deltas **per OS page**
rather than per IP.  The MICRO paper's central claim is that the IP is
the better locality context; this variant exists so the claim can be
tested directly (see ``benchmarks/test_ablation_context.py``).

Implementation: identical machinery (history table, table of deltas,
watermarks, timeliness search) with the training/prediction key switched
from the IP to the accessed page, and cross-page prediction disabled by
construction (a page's deltas are relative to itself).
"""

from __future__ import annotations

from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.memory.address import page_of_line


class BertiPagePrefetcher(BertiPrefetcher):
    """Berti keyed on the OS page instead of the IP (DPC-3 style)."""

    name = "berti_page"
    level = "l1d"
    # Re-declare the opt-ins: the hierarchy (and the batched engine)
    # check the *own* class body, so subclasses do not inherit kernel or
    # batch dispatch by accident.
    kernel_hooks = True
    kernel_batch_hooks = True
    kernel_batch_key = "page"

    def __init__(self, config: BertiConfig | None = None) -> None:
        super().__init__(config)

    def _key(self, ip: int, line: int) -> int:
        return page_of_line(line)
