"""Figure 19: interaction with a temporal prefetcher (MISB at L2).

Paper reference: MISB helps CloudSuite (Cassandra, Classification) whose
irregular streams recur, at a 98 KB storage cost; on SPEC/GAP it is worse
than SPP-PPF as the L2 companion.
"""

from common import cloudsuite_traces, once, run, save_report, spec_traces

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.prefetchers.registry import storage_kb


def test_fig19_misb(benchmark):
    def compute():
        rows = []
        for suite, traces in (("CloudSuite", cloudsuite_traces()),
                              ("SPEC17", spec_traces())):
            base, with_misb, with_spp = [], [], []
            for t in traces:
                b = run(t, "berti")
                base.append(1.0)
                with_misb.append(
                    run(t, "berti", "misb").speedup_over(b)
                )
                with_spp.append(
                    run(t, "berti", "spp_ppf").speedup_over(b)
                )
            rows.append([suite, geomean(with_misb), geomean(with_spp)])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig19_misb",
        format_table(
            ["suite", "berti+misb / berti", "berti+spp_ppf / berti"],
            rows,
            title=(
                "Figure 19 — temporal prefetcher (MISB) at L2 under Berti\n"
                f"(MISB storage: {storage_kb('misb'):.0f} KB;"
                " paper: MISB pays on CloudSuite, SPP-PPF pays on SPEC/GAP)"
            ),
        ),
    )

    by = {r[0]: (r[1], r[2]) for r in rows}
    # MISB's relative benefit is larger on CloudSuite than on SPEC
    # (recurring temporal streams are what it covers).
    assert by["CloudSuite"][0] >= by["SPEC17"][0] - 0.02
    # On SPEC, SPP-PPF is at least as good an L2 companion as MISB.
    assert by["SPEC17"][1] >= by["SPEC17"][0] - 0.02
