"""Reproduction of "Berti: an Accurate Local-Delta Data Prefetcher".

Navarro-Torres, Panda, Alastruey-Benedí, Ibáñez, Viñals-Yúfera, Ros —
MICRO 2022.

Public API tour
---------------

* :mod:`repro.core` — the Berti prefetcher (the paper's contribution).
* :mod:`repro.prefetchers` — baseline prefetchers the paper compares
  against (IP-stride, BOP, MLOP, IPCP, SPP-PPF, Bingo, MISB).
* :mod:`repro.memory` / :mod:`repro.cpu` — the simulated substrate
  (caches, MSHRs, DRAM, TLBs, OoO core timing).
* :mod:`repro.simulator` — the engine: ``simulate(trace, prefetcher)``.
* :mod:`repro.workloads` — SPEC-/GAP-/CloudSuite-like trace generators.
* :mod:`repro.energy` — dynamic-energy model of the memory hierarchy.
* :mod:`repro.analysis` — speedups, geomeans, report tables.

Quickstart::

    from repro import BertiPrefetcher, simulate
    from repro.workloads import spec_like

    trace = spec_like.stream_trace()
    result = simulate(trace, l1d_prefetcher=BertiPrefetcher())
    print(result.ipc, result.pf_l1d.accuracy)
"""

from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import simulate
from repro.simulator.stats import SimResult
from repro.workloads.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "BertiPrefetcher",
    "BertiConfig",
    "SystemConfig",
    "default_config",
    "simulate",
    "SimResult",
    "Trace",
    "__version__",
]
