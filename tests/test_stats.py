"""Unit tests for SimResult and PrefetchSummary."""

import pytest

from repro.simulator.stats import PrefetchSummary, SimResult


class TestPrefetchSummary:
    def test_accuracy_resolved_only(self):
        s = PrefetchSummary(fills=100, useful=40, late=5, useless=10)
        assert s.resolved == 50
        assert s.accuracy == pytest.approx(0.8)

    def test_accuracy_empty(self):
        assert PrefetchSummary().accuracy == 0.0

    def test_timely_late_split(self):
        s = PrefetchSummary(fills=10, useful=8, late=3, useless=2)
        assert s.timely == 5
        assert s.timely_fraction == pytest.approx(0.5)
        assert s.late_fraction == pytest.approx(0.3)

    def test_timely_never_negative(self):
        s = PrefetchSummary(useful=2, late=5)
        assert s.timely == 0


class TestSimResult:
    def _result(self, **kw):
        base = dict(trace_name="t", prefetcher_l1d="a", prefetcher_l2="b",
                    instructions=10_000, cycles=5_000.0)
        base.update(kw)
        return SimResult(**base)

    def test_ipc(self):
        assert self._result().ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert self._result(cycles=0.0).ipc == 0.0

    def test_mpki(self):
        r = self._result(l1d_demand_misses=50, l2_demand_misses=20,
                         llc_demand_misses=10)
        assert r.l1d_mpki == pytest.approx(5.0)
        assert r.l2_mpki == pytest.approx(2.0)
        assert r.llc_mpki == pytest.approx(1.0)

    def test_mpki_zero_instructions(self):
        r = self._result(instructions=0, l1d_demand_misses=5)
        assert r.l1d_mpki == 0.0

    def test_speedup(self):
        fast = self._result(cycles=2_500.0)
        slow = self._result(cycles=5_000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_zero_baseline(self):
        assert self._result().speedup_over(self._result(cycles=0.0)) == 0.0

    def test_summary_line_contains_key_fields(self):
        line = self._result().summary_line()
        assert "t" in line and "IPC" in line

    def test_extra_dict(self):
        r = self._result()
        r.extra["custom"] = 1.5
        assert r.extra["custom"] == 1.5
