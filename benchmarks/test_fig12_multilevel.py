"""Figure 12: multi-level (L1D+L2) prefetching speedups.

Paper reference: Berti+SPP-PPF is the best combination (+10.2 % overall,
only +1.5 % over Berti alone); combinations without Berti roughly match
Berti alone at 18–22× its storage; adding an L2 prefetcher to Berti is a
marginal gain.
"""

from common import (
    MULTILEVEL_SET,
    gap_traces,
    once,
    run_matrix,
    run_multilevel,
    save_report,
    spec_traces,
)

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table


def test_fig12_multilevel_speedups(benchmark):
    def compute():
        out = {}
        for suite, traces in (("SPEC17", spec_traces()), ("GAP", gap_traces())):
            single = run_matrix(traces, ["ip_stride", "berti"])
            multi = run_multilevel(traces, MULTILEVEL_SET)
            merged = {t: {**single[t], **multi[t]} for t in single}
            out[suite] = geomean_speedup(merged)
        return out

    speeds = once(benchmark, compute)
    configs = ["berti"] + [f"{a}+{b}" for a, b in MULTILEVEL_SET]
    rows = [
        [cfg, speeds["SPEC17"].get(cfg, 0.0), speeds["GAP"].get(cfg, 0.0)]
        for cfg in configs
    ]
    save_report(
        "fig12_multilevel",
        format_table(
            ["configuration", "SPEC17", "GAP"], rows,
            title=(
                "Figure 12 — multi-level prefetching speedup vs IP-stride\n"
                "(paper: combos without Berti do not beat Berti alone)"
            ),
        ),
    )

    # On SPEC no Berti-less combination beats Berti alone (the paper's
    # GAP panel allows MLOP+SPP-PPF to roughly *match* Berti there, so
    # the strict ordering is asserted on SPEC only).
    s = speeds["SPEC17"]
    for combo in ("mlop+bingo", "mlop+spp_ppf", "ipcp+ipcp_l2"):
        assert s[combo] <= s["berti"] + 0.04, (combo, s)
    for suite in ("SPEC17", "GAP"):
        s = speeds[suite]
        # Berti-based combos sit at or above Berti alone (small gain).
        assert max(s["berti+spp_ppf"], s["berti+bingo"]) >= s["berti"] - 0.03
        # MLOP+Bingo (the DPC-3 podium pair) never beats Berti alone.
        assert s["mlop+bingo"] <= s["berti"] + 0.04, suite
