"""Miss status holding registers (MSHR).

The MSHR tracks in-flight misses for a cache.  Berti extends each entry
with a 16-bit allocation timestamp so the fill latency can be computed on
return (paper §III-C, "Measuring fetch latency").  We model that timestamp
directly: entries record the cycle they were allocated and whether the miss
originated from a demand access or a prefetch.

Because the simulator resolves memory requests inline (the hierarchy
returns a completion cycle immediately), MSHR entries carry their
``ready_cycle`` and are released lazily: occupancy at cycle *t* counts the
entries whose data has not yet arrived by *t*.  This preserves exactly the
property Berti's prediction path needs — the 70 % occupancy watermark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError


@dataclass(slots=True)
class MSHREntry:
    """One in-flight miss."""

    line: int
    alloc_cycle: int
    ready_cycle: int
    is_prefetch: bool
    ip: int = 0
    vline: int = 0  # virtual line address (what the prefetcher trains on)
    merged_demands: int = 0


class MSHR:
    """A bounded set of in-flight misses with merge support.

    ``size`` is the hardware entry count (Table II: 8/16/32 at L1I/L1D/L2,
    64 per core at the LLC).
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._entries: Dict[int, MSHREntry] = {}
        self._min_ready = 0  # earliest outstanding ready_cycle (fast path)
        self._last_expire = -1  # memo: cycle the last expire scan ran at
        # Statistics
        self.allocations = 0
        self.merges = 0
        self.full_rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _expire(self, now: int) -> None:
        """Drop entries whose fill has arrived by ``now``.

        Guarded by ``_min_ready`` so the common no-op case costs one
        comparison; the scan below only runs when something can expire.
        A second memo skips repeat scans at the same cycle — the demand
        path legitimately calls lookup/can_allocate/allocate with the
        same ``now``, and expiry is idempotent per cycle (new entries
        allocated at ``now`` become ready strictly later).
        """
        if now == self._last_expire:
            return
        self._last_expire = now
        entries = self._entries
        if not entries or now < self._min_ready:
            return
        done = []
        min_ready = None
        for line, e in entries.items():
            ready = e.ready_cycle
            if ready <= now:
                done.append(line)
            elif min_ready is None or ready < min_ready:
                min_ready = ready
        for line in done:
            del entries[line]
        self._min_ready = min_ready if min_ready is not None else 0

    def occupancy(self, now: int) -> int:
        """Number of outstanding entries at cycle ``now``."""
        if now != self._last_expire:
            self._expire(now)
        return len(self._entries)

    def occupancy_fraction(self, now: int) -> float:
        """Outstanding entries as a fraction of capacity (0.0–1.0)."""
        if self.size == 0:
            return 0.0
        return self.occupancy(now) / self.size

    def lookup(self, line: int, now: int) -> Optional[MSHREntry]:
        """Return the in-flight entry for ``line`` if one exists at ``now``."""
        if now != self._last_expire:
            self._expire(now)
        return self._entries.get(line)

    def can_allocate(self, now: int) -> bool:
        """True when a new entry can be allocated at cycle ``now``."""
        return self.occupancy(now) < self.size

    def allocate(
        self,
        line: int,
        now: int,
        ready_cycle: int,
        is_prefetch: bool,
        ip: int = 0,
        vline: int = 0,
    ) -> MSHREntry:
        """Allocate an entry for a new miss.

        Raises :class:`~repro.errors.SimulationError` when full; callers
        must check :meth:`can_allocate` first (demand misses in the
        simulator stall the core instead, prefetches are dropped).
        """
        if now != self._last_expire:
            self._expire(now)
        if len(self._entries) >= self.size:
            self.full_rejections += 1
            raise SimulationError(
                f"MSHR full: {len(self._entries)}/{self.size} entries "
                f"outstanding at cycle {now} (line {line:#x})",
                field="mshr",
            )
        entry = MSHREntry(
            line=line,
            alloc_cycle=now,
            ready_cycle=ready_cycle,
            is_prefetch=is_prefetch,
            ip=ip,
            vline=vline,
        )
        if not self._entries or ready_cycle < self._min_ready:
            self._min_ready = ready_cycle
        self._entries[line] = entry
        self.allocations += 1
        return entry

    def merge_demand(self, entry: MSHREntry, now: int) -> int:
        """A demand access hits an in-flight miss: merge and return wait.

        If the in-flight request was a prefetch, the entry is promoted to a
        demand (matching ChampSim's behaviour) so its fill is no longer
        counted as a prefetch fill.

        Returns the remaining latency the demand observes.
        """
        self.merges += 1
        entry.merged_demands += 1
        return max(0, entry.ready_cycle - now)

    def earliest_ready(self, now: int) -> int:
        """Cycle at which the next entry frees; ``now`` if none in flight.

        Demand misses that find the MSHR full stall until this cycle, the
        behaviour ChampSim models by replaying the access.

        ``_min_ready`` is exact whenever entries are outstanding: the
        expire scan recomputes it as the min over survivors, allocate
        lowers it for earlier entries, and nothing else mutates ready
        cycles (the sanitizer's unsound-guard check enforces this), so
        after the expire below no min() scan is needed.
        """
        self._expire(now)
        if not self._entries:
            return now
        return self._min_ready

    def outstanding(self, now: int) -> List[MSHREntry]:
        """Snapshot of in-flight entries at cycle ``now``."""
        self._expire(now)
        return list(self._entries.values())

    def reset(self) -> None:
        """Clear all state (used between warmup and measurement)."""
        self._entries.clear()
        self._min_ready = 0
        self._last_expire = -1
        self.allocations = 0
        self.merges = 0
        self.full_rejections = 0
