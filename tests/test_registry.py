"""Tests for the prefetcher registry."""

import pytest

from repro.prefetchers.base import FILL_L1, FILL_L2, AccessInfo, Prefetcher
from repro.prefetchers.registry import (
    L1D_PREFETCHERS,
    L2_PREFETCHERS,
    IPCPL2Prefetcher,
    available,
    make_prefetcher,
    storage_kb,
)


class TestFactory:
    @pytest.mark.parametrize("name", [
        "none", "berti", "ip_stride", "next_line", "bop", "mlop", "ipcp",
        "spp_ppf", "spp", "bingo", "misb", "ipcp_l2",
    ])
    def test_all_names_construct(self, name):
        pf = make_prefetcher(name)
        assert isinstance(pf, Prefetcher)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("bogus")

    def test_instances_are_fresh(self):
        assert make_prefetcher("berti") is not make_prefetcher("berti")

    def test_spp_variants_differ(self):
        assert make_prefetcher("spp").use_ppf is False
        assert make_prefetcher("spp_ppf").use_ppf is True

    def test_available_sorted(self):
        names = available()
        assert names == sorted(names)
        assert "berti" in names


class TestLevels:
    def test_l1d_list_levels(self):
        for name in L1D_PREFETCHERS:
            assert make_prefetcher(name).level == "l1d"

    def test_l2_list_levels(self):
        for name in L2_PREFETCHERS:
            if name == "none":
                continue
            assert make_prefetcher(name).level == "l2"


class TestIPCPL2:
    def test_fill_levels_capped_at_l2(self):
        pf = IPCPL2Prefetcher()
        for i in range(6):
            reqs = pf.on_access(AccessInfo(
                ip=0x77, line=i * 4, hit=False, prefetch_hit=False, now=i,
            ))
        assert reqs
        assert all(r.fill_level != FILL_L1 for r in reqs)


class TestStorageBudgets:
    def test_berti_smallest_competitive(self):
        """Figure 7's storage axis: Berti ~2.55 KB, IPCP similar, MLOP a
        few KB, SPP-PPF and Bingo tens of KB, MISB ~100 KB."""
        kb = {n: storage_kb(n) for n in
              ["berti", "ipcp", "mlop", "spp_ppf", "bingo", "misb"]}
        assert kb["berti"] == pytest.approx(2.55, abs=0.05)
        assert kb["ipcp"] < 5
        assert kb["mlop"] < 15
        assert kb["spp_ppf"] > 5
        assert kb["bingo"] > 20
        assert kb["misb"] > 90

    def test_none_is_free(self):
        assert storage_kb("none") == 0.0
