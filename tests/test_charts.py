"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    series_chart,
    sparkline,
)


class TestBarChart:
    def test_contains_labels_and_values(self):
        out = bar_chart({"berti": 1.2, "mlop": 0.9}, title="T")
        assert out.startswith("T")
        assert "berti" in out and "1.200" in out

    def test_longest_bar_is_max(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = {ln.split()[0]: ln for ln in out.splitlines()}
        assert lines["b"].count("█") > lines["a"].count("█")

    def test_baseline_marker(self):
        out = bar_chart({"a": 2.0, "b": 0.5}, baseline=1.0, width=20)
        assert "|" in out.splitlines()[1]  # marker visible in short bar

    def test_empty(self):
        assert bar_chart({}, title="E") == "E"

    def test_zero_values_do_not_crash(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out

    def test_custom_format(self):
        out = bar_chart({"a": 0.5}, fmt="{:.0%}")
        assert "50%" in out


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            {"SPEC": {"berti": 1.2}, "GAP": {"berti": 1.0}}, title="G"
        )
        assert out.splitlines()[0] == "G"
        assert "SPEC:" in out and "GAP:" in out


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestSeriesChart:
    def test_ranges_shown(self):
        out = series_chart({"berti": [(1, 1.0), (2, 1.5)]}, title="S")
        assert "[1.000, 1.500]" in out

    def test_empty(self):
        assert series_chart({}, title="S") == "S"
