"""Structured adversarial generators: traces and config vectors.

Every family targets a specific weakness class of delta-based prefetch
state machines (history ring wrap, delta-table FIFO thrash, page-crop
logic, warmup bookkeeping) rather than uniform random noise — uniform
noise exercises almost no interesting transitions per record, while a
page-boundary storm or an IP-aliasing flood drives the exact code the
Berti tables use to decide timeliness and coverage.

Generators are pure functions of a :class:`random.Random` instance:
the campaign derives one child seed per case, so the case list for a
given campaign seed is identical across runs, machines, and
``PYTHONHASHSEED`` values.

Config vectors are *adversarial but valid*: every emitted override
passes ``BertiConfig.__post_init__`` — the point is to stress the
engines on legal extremes (1-way tables, zero watermarks, chunk size 1
or a prime), not to test the validators (the corruption injector owns
invalid bytes).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.fuzz.cases import FuzzCase

__all__ = ["FAMILIES", "generate_case"]

LINE = 64
PAGE = 4096
PAGE_LINES = PAGE // LINE

Records = List[List[int]]


def _rows(entries) -> Records:
    return [[int(ip), int(addr), int(bool(w)), int(gap), int(dep)]
            for ip, addr, w, gap, dep in entries]


# ----------------------------------------------------------------------
# Trace families
# ----------------------------------------------------------------------


def _degenerate_stride(rng: random.Random) -> Tuple[Records, str, Dict]:
    """Stride 0 / ±1 line / huge / alternating-sign single-IP streams.

    Stride 0 keeps hitting one line (timeliness denominators near zero);
    alternating ±d cancels to no net motion but floods the delta table;
    a huge stride crosses a page on every access.
    """
    n = rng.randrange(96, 384)
    kind = rng.choice(["zero", "one", "minus", "huge", "alternate"])
    stride = {"zero": 0, "one": 1, "minus": -1,
              "huge": rng.choice([PAGE_LINES, 3 * PAGE_LINES + 1]),
              "alternate": rng.randrange(1, 8)}[kind]
    ip = 0x400000 + rng.randrange(16) * 4
    base = (1 + rng.randrange(64)) * PAGE
    gap = rng.choice([0, 1, 7])
    out = []
    line = base // LINE
    for i in range(n):
        out.append((ip, line * LINE, False, gap, 0))
        if kind == "alternate":
            line += stride if i % 2 == 0 else -stride
        else:
            line += stride
        line = max(line, 1)
    return _rows(out), f"stride:{kind}", {}


def _page_storm(rng: random.Random) -> Tuple[Records, str, Dict]:
    """Accesses hammering 4 KB page boundaries from both sides.

    Berti crops (or suppresses) prefetches that cross a page; lines
    ping-ponging across a boundary make every learned delta a crossing
    one, exercising the crop path and the ``cross_page`` ablation.
    """
    n = rng.randrange(128, 512)
    pages = [(2 + rng.randrange(256)) * PAGE
             for _ in range(rng.randrange(2, 6))]
    ip = 0x500000
    out = []
    for i in range(n):
        page = pages[i % len(pages)]
        # Last or first line of the page, alternating: every delta
        # between consecutive same-page accesses crosses the boundary.
        edge = page + (PAGE - LINE if i % 2 == 0 else 0)
        jitter = rng.randrange(2) * LINE
        out.append((ip, max(LINE, edge - jitter), False, 2, 0))
    return _rows(out), "page-storm", {}


def _ip_alias(rng: random.Random) -> Tuple[Records, str, Dict]:
    """More concurrent IPs than the history table has associativity.

    With ``history_sets=S``, IPs spaced ``S`` apart index the same set;
    a flood of K >> ways such IPs evicts each other's history before a
    search completes, so learned deltas come from torn windows.
    """
    n = rng.randrange(128, 512)
    sets = rng.choice([1, 2, 8])
    flood = rng.randrange(3, 24)
    ips = [0x600000 + (k * sets) * 4 for k in range(flood)]
    out = []
    lines = {ip: 0x100000 // LINE + k * 2048 for k, ip in enumerate(ips)}
    strides = {ip: rng.choice([1, 2, 3, -1]) for ip in ips}
    for i in range(n):
        ip = ips[i % flood]
        out.append((ip, lines[ip] * LINE, False, 1, 0))
        lines[ip] = max(1, lines[ip] + strides[ip])
    # Pin the geometry the IP spacing was computed against.
    return _rows(out), f"ip-alias:{flood}x{sets}", {"history_sets": sets}


def _warmup_edge(rng: random.Random) -> Tuple[Records, str, Dict]:
    """Tiny traces whose warmup boundary lands on degenerate indexes.

    One to a handful of records with warmup fractions of 0, near-1, or
    placing the boundary on the very first/last record — the off-by-one
    farm of the measurement bookkeeping.  A zero-record trace is the
    ``expect="reject"`` member: every engine must refuse it typed.
    """
    n = rng.choice([0, 1, 2, 3, 5, 8])
    ip = 0x700000
    out = [(ip, (0x200 + i * rng.choice([1, 2])) * LINE, i % 2 == 1,
            rng.randrange(3), 0)
           for i in range(n)]
    return _rows(out), f"warmup-edge:{n}", {}


def _zipf_interleave(rng: random.Random) -> Tuple[Records, str, Dict]:
    """Zipf-skewed multi-stream interleave: one hog, a long tail.

    Stream k gets ~1/(k+1) of the records; chunked round-robin delivery
    means the tail streams present Berti with long reuse distances and
    constantly-stale timestamps while the hog wraps the history ring.
    """
    n = rng.randrange(192, 512)
    k = rng.randrange(3, 8)
    weights = [1.0 / (i + 1) for i in range(k)]
    total = sum(weights)
    ips = [0x800000 + i * 4 for i in range(k)]
    lines = [0x40000 // LINE + i * 4096 for i in range(k)]
    strides = [rng.choice([1, 2, 5, -2]) for _ in range(k)]
    deps = [rng.choice([0, 0, 1]) for _ in range(k)]
    out = []
    while len(out) < n:
        r = rng.random() * total
        s = 0
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if r <= acc:
                s = i
                break
        burst = rng.randrange(1, 4)
        for _ in range(burst):
            out.append((ips[s], lines[s] * LINE, False, 1, deps[s]))
            lines[s] = max(1, lines[s] + strides[s])
    return _rows(out[:n]), f"zipf:{k}", {}


_TRACE_FAMILIES = {
    "degenerate-stride": _degenerate_stride,
    "page-storm": _page_storm,
    "ip-alias": _ip_alias,
    "warmup-edge": _warmup_edge,
    "zipf-interleave": _zipf_interleave,
}

FAMILIES = sorted(_TRACE_FAMILIES)


# ----------------------------------------------------------------------
# Config vectors
# ----------------------------------------------------------------------

_WATERMARKS = [
    None,              # paper defaults
    (0.0, 0.0),        # everything qualifies for L1D fill
    (1.0, 1.0),        # nothing ever reaches the high tier
    (1.0, 0.0),        # maximal spread: every delta lands mid-tier
]

_GEOMETRIES: List[Dict[str, int]] = [
    {},
    {"history_sets": 1, "history_ways": 1},            # single-entry history
    {"delta_table_entries": 1, "deltas_per_entry": 1}, # 1-delta learning
    {"counter_max": 1, "max_deltas_per_search": 1},    # instant phase flip
    {"pq_entries": 1, "mshr_entries": 1},              # queues always full
    {"l1d_lines": 1, "latency_bits": 1},               # latency field wraps
    {"max_prefetch_deltas": 1},
]

_CHUNKS = [0, 1, 17, 8192]       # default, minimal, prime, huge
_WARMUPS = [0.0, 0.2, 0.5, 0.9]


def _config_vector(rng: random.Random) -> Dict[str, Any]:
    config: Dict[str, Any] = {
        "l1d": rng.choice(["berti", "berti", "berti", "berti_page",
                           "next_line"]),
        "l2": rng.choice(["none", "none", "none", "vldp"]),
        "chunk_size": rng.choice(_CHUNKS),
        "warmup_fraction": rng.choice(_WARMUPS),
    }
    berti: Dict[str, Any] = dict(rng.choice(_GEOMETRIES))
    marks = rng.choice(_WATERMARKS)
    if marks is not None:
        berti["high_watermark"] = marks[0]
        berti["medium_watermark"] = marks[1]
        berti["low_watermark"] = marks[1]
    if rng.random() < 0.25:
        berti["cross_page"] = False
    if berti:
        config["berti"] = dict(sorted(berti.items()))
    if rng.random() < 0.15:
        # Native-backend edge: force the C kernel to demote to the
        # batched Python loop mid-run (0 = before the first span), so
        # the marshal round-trip is exercised at awkward boundaries.
        config["native_demote_at"] = rng.choice([0, 1, 7, 64])
    return config


# ----------------------------------------------------------------------


def generate_case(family: str, seed: int) -> FuzzCase:
    """Deterministically expand ``(family, seed)`` into a full case."""
    rng = random.Random(seed)
    records, detail, pinned = _TRACE_FAMILIES[family](rng)
    config = _config_vector(rng)
    if pinned:
        # Family-pinned Berti fields win over the random vector: the
        # trace's arithmetic (e.g. IP spacing) was computed against them.
        berti = dict(config.get("berti", {}))
        berti.update(pinned)
        config["berti"] = dict(sorted(berti.items()))
    if not records:
        config["expect"] = "reject"
    return FuzzCase(family=family, seed=seed, records=records,
                    config=config,
                    provenance=f"generated: {family} ({detail}) seed={seed}")
