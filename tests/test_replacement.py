"""Unit tests for replacement policies."""

import pytest

from repro.memory.replacement import (
    DRRIPPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    make_policy,
)


class TestLRU:
    def test_evicts_least_recently_used(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)  # way 0 becomes MRU
        assert p.victim(0) == 1

    def test_fill_counts_as_use(self):
        p = LRUPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        assert p.victim(0) == 0

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_fill(1, 1)
        p.on_fill(1, 0)
        assert p.victim(0) == 0
        assert p.victim(1) == 1


class TestFIFO:
    def test_evicts_oldest_fill(self):
        p = FIFOPolicy(1, 3)
        for way in (2, 0, 1):
            p.on_fill(0, way)
        assert p.victim(0) == 2

    def test_hits_do_not_refresh(self):
        p = FIFOPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        assert p.victim(0) == 0


class TestRandom:
    def test_victim_in_range(self):
        p = RandomPolicy(1, 4, seed=42)
        for _ in range(50):
            assert 0 <= p.victim(0) < 4

    def test_deterministic_with_seed(self):
        a = [RandomPolicy(1, 8, seed=1).victim(0) for _ in range(5)]
        b = [RandomPolicy(1, 8, seed=1).victim(0) for _ in range(5)]
        assert a == b


class TestSRRIP:
    def test_fill_inserts_long_rereference(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        assert p._rrpv[0][0] == SRRIPPolicy.MAX_RRPV - 1

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p._rrpv[0][0] == 0

    def test_victim_prefers_distant(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        assert p.victim(0) == 1

    def test_victim_ages_until_found(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        p.on_hit(0, 1)
        way = p.victim(0)
        assert way in (0, 1)
        assert p._rrpv[0][way] == SRRIPPolicy.MAX_RRPV


class TestDRRIP:
    def test_leader_sets_disjoint(self):
        p = DRRIPPolicy(64, 4)
        assert not (p._srrip_leaders & p._brrip_leaders)

    def test_record_miss_moves_psel(self):
        p = DRRIPPolicy(64, 4)
        start = p._psel
        p.record_miss(0)   # SRRIP leader -> increment
        assert p._psel == start + 1
        p.record_miss(16)  # BRRIP leader -> decrement
        assert p._psel == start

    def test_follower_uses_duel_winner(self):
        p = DRRIPPolicy(64, 4)
        p._psel = 0
        assert not p._use_brrip(1)
        p._psel = p._psel_max
        assert p._use_brrip(1)

    def test_brrip_mostly_distant(self):
        p = DRRIPPolicy(64, 4)
        p._psel = p._psel_max
        rrpvs = {p.insertion_rrpv(1) for _ in range(200)}
        assert SRRIPPolicy.MAX_RRPV in rrpvs


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "srrip", "drrip"])
    def test_known_policies(self, name):
        p = make_policy(name, 4, 4)
        assert p.num_sets == 4 and p.num_ways == 4

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru", 4, 4)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2, 2), LRUPolicy)
