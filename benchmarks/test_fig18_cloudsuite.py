"""Figure 18: CloudSuite speedups.

Paper reference: data-prefetching headroom is small (L1D MPKI 6.9 vs 42+
for SPEC): even an ideal L1D helps little on cloud9/nutch; Classification
is the one benchmark where only Berti's accuracy pays off.
"""

from common import cloudsuite_traces, once, run, save_report, spec_traces

from repro.analysis.report import format_table

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]


def test_fig18_cloudsuite(benchmark):
    def compute():
        rows = []
        mpki = {}
        for t in cloudsuite_traces():
            base = run(t, "ip_stride")
            mpki[t.name] = base.l1d_mpki
            rows.append(
                [t.name, base.l1d_mpki]
                + [run(t, n).speedup_over(base) for n in NAMES[1:]]
            )
        spec_mpki = sum(
            run(t, "ip_stride").l1d_mpki for t in spec_traces()
        ) / len(spec_traces())
        return rows, spec_mpki

    rows, spec_mpki = once(benchmark, compute)
    save_report(
        "fig18_cloudsuite",
        format_table(
            ["trace", "L1D MPKI", "mlop", "ipcp", "berti"], rows,
            title=(
                "Figure 18 — CloudSuite speedups vs IP-stride\n"
                f"(SPEC17 average L1D MPKI for comparison: {spec_mpki:.1f};"
                " paper: CloudSuite ~6.9 -> little headroom)"
            ),
        ),
    )

    # CloudSuite MPKI is far below the SPEC-like average (the paper's
    # explanation for the small prefetching headroom).
    avg_cs_mpki = sum(r[1] for r in rows) / len(rows)
    assert avg_cs_mpki < spec_mpki / 2

    # Speedups are correspondingly muted: nobody gains much.
    for row in rows:
        for speed in row[2:]:
            assert 0.55 < speed < 1.4, row

    # Classification: "one benchmark where all the prefetchers fail
    # except Berti" (§IV-G).
    classification = next(r for r in rows if r[0] == "classification")
    mlop_s, ipcp_s, berti_s = classification[2:]
    assert berti_s == max(mlop_s, ipcp_s, berti_s)
    assert berti_s > 1.0
