"""Retrying HTTP client for the campaign service.

`repro submit/poll/fetch` go through :class:`ServiceClient`, which
wraps a :mod:`repro.fleet.transport` transport with the retry
discipline the chaos harness exercises:

* **bounded attempts** — a hard cap, never an infinite loop;
* **exponential backoff with jitter** — base * 2^attempt, with a
  deterministic seeded jitter so two clients racing a recovering daemon
  do not retry in lockstep (and so chaos runs replay identically);
* **Retry-After wins — when sane** — a 429/503 carrying the header
  sleeps exactly what the daemon asked for; a malformed, negative,
  non-finite, or absurdly large value is ignored in favour of the
  computed backoff (a confused proxy must not be able to park the
  client forever);
* **retry only what is safe** — transport errors and 5xx/429 retry;
  4xx application errors (bad submission, unknown campaign) surface
  immediately as typed :class:`~repro.errors.ServiceError`.

Network-level failures never escape untyped: the transport wraps every
``ConnectionError``/``OSError``/``socket.timeout`` in a field-tagged
:class:`~repro.errors.TransportError`, and the chaos harness swaps in a
fault-injecting transport at exactly this seam.

Submission is idempotent server-side (content-hash keyed), so retrying
a POST that may or may not have landed is safe by construction — the
worst case is the same campaign id coming back twice.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ServiceError, TransportError

__all__ = ["ServiceClient", "read_endpoint"]

#: Statuses worth retrying: transient daemon states, not client bugs.
_RETRYABLE_STATUS = frozenset({429, 500, 502, 503, 504})

#: A Retry-After above this is treated as garbage (fall back to our own
#: backoff) — no daemon of ours legitimately asks a client to sleep an
#: hour between retries.
_MAX_RETRY_AFTER = 3600.0


def read_endpoint(state_dir: Union[str, Path]) -> Tuple[str, int]:
    """(host, port) from the daemon's ``endpoint.json`` discovery file."""
    path = Path(state_dir) / "endpoint.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return str(data["host"]), int(data["port"])
    except FileNotFoundError:
        raise ServiceError(
            f"no endpoint.json under {state_dir} — is the daemon running "
            f"(repro serve --state-dir {state_dir})?", status=503,
        )
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ServiceError(
            f"unreadable endpoint file {path}: {exc}", status=500
        )


class ServiceClient:
    """JSON-over-HTTP client with bounded retry + backoff + jitter."""

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        timeout: float = 30.0,
        jitter_seed: Optional[int] = None,
        sleep_fn=time.sleep,
        transport=None,
    ) -> None:
        # Imported lazily: repro.fleet's package init pulls in the agent
        # (which imports this module), so a module-level import would
        # cycle.  The transport submodule alone is cycle-free.
        from repro.fleet.transport import HTTPTransport

        self.host = host
        self.port = port
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.transport = transport or HTTPTransport(host, port,
                                                    timeout=timeout)
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep_fn
        self.attempts_made = 0  # across the client's lifetime (observability)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(self, jobs, idempotency_key: str = "") -> Dict[str, Any]:
        payload: Dict[str, Any] = {"jobs": list(jobs)}
        if idempotency_key:
            payload["idempotency_key"] = idempotency_key
        return self.request("POST", "/v1/campaigns", payload)

    def status(self, cid: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/campaigns/{cid}")

    def results(self, cid: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/campaigns/{cid}/results")

    def cancel(self, cid: str) -> Dict[str, Any]:
        return self.request("POST", f"/v1/campaigns/{cid}/cancel", {})

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def fleet(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/fleet")

    def poll(self, cid: str, interval: float = 0.2,
             timeout: float = 300.0) -> Dict[str, Any]:
        """Block until the campaign resolves; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(cid)
            if status.get("state") in ("done", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {cid} still {status.get('state')!r} after "
                    f"{timeout:g}s", status=504,
                )
            self._sleep(interval)

    # ------------------------------------------------------------------
    # Transport with retry
    # ------------------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        last_error: Optional[ServiceError] = None
        for attempt in range(self.retries + 1):
            self.attempts_made += 1
            try:
                status, retry_after, body = self._once(method, path, payload)
            except TransportError as exc:
                last_error = exc
                self._backoff(attempt, None)
                continue
            except (ConnectionError, socket.timeout, socket.gaierror,
                    http.client.HTTPException, OSError) as exc:
                # Belt for custom transports that leak raw network
                # errors: everything leaves this loop typed.
                last_error = TransportError(
                    f"{method} {path} failed: {type(exc).__name__}: {exc}",
                )
                self._backoff(attempt, None)
                continue
            if status < 400:
                return body
            message = (body.get("message")
                       if isinstance(body, dict) else None) or (
                f"{method} {path} returned HTTP {status}")
            error = ServiceError(message, status=status,
                                 retry_after=retry_after)
            if status not in _RETRYABLE_STATUS:
                raise error  # an application error; retrying cannot help
            last_error = error
            self._backoff(attempt, retry_after)
        raise ServiceError(
            f"{method} {path} still failing after "
            f"{self.retries + 1} attempts: {last_error}",
            status=last_error.status if last_error else 503,
            retry_after=last_error.retry_after if last_error else None,
        )

    def _once(self, method: str, path: str,
              payload: Optional[Dict[str, Any]]):
        return self.transport.send(method, path, payload)

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> None:
        if attempt >= self.retries:
            return  # out of attempts: no point sleeping before the raise
        delay = _sanitize_retry_after(retry_after)
        if delay is None:
            delay = min(self.backoff_cap,
                        self.backoff_base * (2 ** attempt))
            delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
        self._sleep(delay)


def _sanitize_retry_after(value) -> Optional[float]:
    """A usable Retry-After, or ``None`` to use computed backoff.

    Defends against every malformed shape a proxy or buggy server can
    emit: non-numeric strings, ``None``, negatives, NaN, infinities, and
    hints so large they would park the client for hours.
    """
    if value is None:
        return None
    try:
        parsed = float(str(value).strip())
    except (TypeError, ValueError):
        return None
    if parsed != parsed:  # NaN
        return None
    if parsed < 0.0 or parsed > _MAX_RETRY_AFTER:
        return None
    return parsed


# Kept under its historical name for callers/tests that parse headers
# directly.
_parse_retry_after = _sanitize_retry_after
