"""Address arithmetic helpers shared across the memory hierarchy.

Everything in the simulator works with *byte* virtual/physical addresses.
Caches and prefetchers mostly reason in units of cache lines (64 bytes) or
OS pages (4 KB); the helpers here centralise the bit arithmetic so no other
module hard-codes shift amounts.
"""

from __future__ import annotations

LINE_SIZE = 64
LINE_BITS = 6

PAGE_SIZE = 4096
PAGE_BITS = 12

LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


def line_of(addr: int) -> int:
    """Cache-line number containing byte address ``addr``."""
    return addr >> LINE_BITS


def line_addr(line: int) -> int:
    """Byte address of the first byte of cache line ``line``."""
    return line << LINE_BITS


def page_of(addr: int) -> int:
    """OS-page number containing byte address ``addr``."""
    return addr >> PAGE_BITS


def page_addr(page: int) -> int:
    """Byte address of the first byte of page ``page``."""
    return page << PAGE_BITS


def page_of_line(line: int) -> int:
    """OS-page number containing cache line ``line``."""
    return line >> (PAGE_BITS - LINE_BITS)


def line_offset_in_page(line: int) -> int:
    """Index of cache line ``line`` within its OS page (0..63)."""
    return line & (LINES_PER_PAGE - 1)


def same_page(line_a: int, line_b: int) -> bool:
    """True when two cache lines fall in the same OS page."""
    return page_of_line(line_a) == page_of_line(line_b)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a two's-complement int.

    Used to model the bounded-width delta fields in hardware tables (e.g.
    Berti stores deltas in 13 bits).
    """
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def fits_in_signed(value: int, bits: int) -> bool:
    """True when ``value`` is representable as a ``bits``-bit signed int."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi
