"""Heterogeneous multi-core mixes (paper §IV-I).

The paper simulates 200 random 4-core mixes drawn from the
memory-intensive SPEC CPU2017 and GAP traces; each core replays its
trace until all cores finish their instruction budget.  We reproduce the
procedure over our suites with a deterministic seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.gap import gap_suite
from repro.workloads.spec_like import spec17_suite
from repro.workloads.trace import Trace


def random_mixes(
    num_mixes: int,
    cores: int = 4,
    scale: float = 1.0,
    seed: int = 0,
    pool: Sequence[Trace] | None = None,
) -> List[List[Trace]]:
    """Draw ``num_mixes`` random ``cores``-wide trace mixes.

    The pool defaults to the SPEC-like plus GAP-like suites, as in the
    paper's multi-core methodology.
    """
    if pool is None:
        pool = list(spec17_suite(scale)) + list(gap_suite(scale))
    rng = random.Random(seed)
    mixes = []
    for _ in range(num_mixes):
        mixes.append([rng.choice(list(pool)) for _ in range(cores)])
    return mixes
