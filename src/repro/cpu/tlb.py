"""TLB models: L1 dTLB and the shared second-level TLB (STLB).

Table II: L1 dTLB — 64 entries, 4-way, 1 cycle; STLB — 2048 entries,
16-way, 8 cycles.  The Berti prediction path uses the STLB to translate
virtual prefetch addresses; a prefetch whose page misses the STLB is
dropped (paper §III-B), which is the mechanism that bounds the cost of
cross-page prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(slots=True)
class TLBStats:
    accesses: int = 0
    hits: int = 0
    prefetch_probes: int = 0
    prefetch_probe_hits: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.prefetch_probes = 0
        self.prefetch_probe_hits = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits


class TLB:
    """Set-associative TLB mapping virtual pages to physical pages."""

    def __init__(self, name: str, entries: int, ways: int, latency: int) -> None:
        if entries % ways != 0:
            raise ValueError(f"{name}: entries {entries} not divisible by ways {ways}")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.latency = latency
        self.num_sets = entries // ways
        # Per set: list of (vpage, ppage) most-recent-last (LRU order).
        self._sets: List[List[tuple]] = [[] for _ in range(self.num_sets)]
        # Flat index for O(1) probes; mirrors the per-set contents.
        self._map: dict = {}
        self.stats = TLBStats()

    def _set_of(self, vpage: int) -> int:
        return vpage % self.num_sets

    def lookup(self, vpage: int) -> Optional[int]:
        """Translate ``vpage``; returns the physical page or None on miss."""
        self.stats.accesses += 1
        if vpage not in self._map:
            return None
        entries = self._sets[self._set_of(vpage)]
        for i, (vp, pp) in enumerate(entries):
            if vp == vpage:
                entries.append(entries.pop(i))  # move to MRU
                self.stats.hits += 1
                return pp
        return None  # unreachable if _map is consistent

    def probe(self, vpage: int) -> Optional[int]:
        """Translation check without LRU update or hit/miss accounting.

        Used for prefetch translations: the paper drops prefetches on STLB
        misses rather than walking, and prefetch probes must not perturb
        demand-driven TLB statistics.
        """
        self.stats.prefetch_probes += 1
        pp = self._map.get(vpage)
        if pp is not None:
            self.stats.prefetch_probe_hits += 1
        return pp

    def insert(self, vpage: int, ppage: int) -> None:
        """Install a translation, evicting LRU if the set is full."""
        entries = self._sets[self._set_of(vpage)]
        for i, (vp, _) in enumerate(entries):
            if vp == vpage:
                entries.pop(i)
                break
        entries.append((vpage, ppage))
        self._map[vpage] = ppage
        if len(entries) > self.ways:
            evicted_vp, __ = entries.pop(0)
            del self._map[evicted_vp]

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self._map.clear()
        self.stats.reset()

    def __getstate__(self):
        # _map mirrors _sets for O(1) probes; LRU order lives in _sets.
        # Canonicalise the index's dict order so snapshots taken under
        # the native backend (which rebuilds it in scan order) are
        # byte-identical to classic/batched ones.
        state = self.__dict__.copy()
        state["_map"] = dict(sorted(self._map.items()))
        return state
