"""Host-level chaos harness for the campaign supervisor.

Where :mod:`repro.runner.faultinject` perturbs a *job* (crashes, hangs,
corrupt traces), this module perturbs the *host* around a whole
campaign, deterministically, and then asserts the campaign invariants
held:

* ``disk-full``   — chosen journal appends raise ``ENOSPC``; outcomes
  must be buffered and flushed once the disk "recovers", in order,
  losing and duplicating nothing.
* ``sigkill``     — the campaign process SIGKILLs *itself* in the middle
  of a journal append (after spilling a torn half-line, the classic
  crash artefact); the journal must stay parseable and a plain resume
  must execute exactly the missing jobs.
* ``hung-worker`` — a worker sleeps forever; the heartbeat watchdog must
  preempt it long before any wall-clock budget.
* ``balloon``     — a worker allocates real resident memory and idles;
  the per-worker RSS guard must preempt it with a typed
  ``ResourceError``.
* ``clock-skew``  — the supervisor's clock jumps forward minutes while
  jobs are in flight; deadlines must be rebased, nothing spuriously
  expired.

Four further scenarios aim at the campaign *service*
(:mod:`repro.service` — the durable scheduler daemon behind
``repro serve``) and its network surface:

* ``service-sigkill``    — the daemon is SIGKILLed mid-campaign; a
  restart against the same state directory must replay the WAL, requeue
  the orphaned lease exactly once, and finish with byte-identical
  results, none lost, none duplicated.
* ``client-disconnect``  — a client tears the connection mid-upload
  (truncated POST body) and mid-download (closes before reading the
  response); the daemon must act on neither partial request nor die,
  and a well-behaved client then gets byte-identical results.
* ``cache-corruption``   — a result-cache entry is bit-flipped on disk;
  the checksum must catch it, the entry must be quarantined (never
  served), and the recomputed result must match the reference exactly.
* ``duplicate-submit``   — the same campaign is submitted twice
  concurrently; both submissions must map onto one campaign, the work
  must be computed exactly once, and a later resubmit must be a 100%
  cache hit with zero recomputation.

Four more scenarios aim at the multi-host *fleet* (:mod:`repro.fleet`
— remote agents pulling leased jobs over HTTP), using the seeded
fault-injecting transport for deterministic network failure:

* ``agent-sigkill``      — a remote agent is SIGKILLed while holding a
  lease; the daemon must declare it dead, requeue its job exactly once
  (manifest-attributed), degrade to its local pool, and finish with
  byte-identical results.
* ``network-partition``  — the agent's link is severed mid-job; the
  daemon reaps it and completes degraded, then the partition heals and
  the agent must *rejoin* — with the degradation window closed and
  recorded, and no result lost or doubled.
* ``duplicate-delivery`` — every result the agent sends is delivered
  twice (plus stale out-of-order redeliveries); the lease ledger must
  record each job exactly once and drop every duplicate with lineage.
* ``digest-mismatch``    — the trace-store interchange file is
  corrupted after submission; the agent must refuse the poisoned job
  (typed, without executing), the daemon must requeue it within the
  lease budget, and the healed file must then produce byte-identical
  results.

After every scenario the harness checks the **journal invariants**: all
lines parse (a torn line is tolerated only at EOF), no key has more than
one ``ok`` record, a resume executes exactly the missing keys, and the
merged results are bit-identical to a fault-free reference run.

Everything is counter-based — no randomness, no reliance on real host
pressure — so a failing scenario reproduces exactly.  ``repro chaos``
is the CLI entry point; ``--quick`` runs the subset CI exercises.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.runner import worker
from repro.runner.executor import ExperimentRunner, RunnerConfig
from repro.runner.faultinject import FaultSpec
from repro.runner.jobs import JobSpec
from repro.runner.journal import Journal
from repro.runner.resources import ResourceMonitor, ResourcePolicy
from repro.runner.supervisor import (
    CampaignSupervisor,
    SupervisorConfig,
    load_campaign_manifest,
)

__all__ = [
    "ENOSPCJournal",
    "KillerJournal",
    "QUICK_SCENARIOS",
    "SCENARIOS",
    "ScenarioResult",
    "SkewedClock",
    "run_chaos",
    "verify_journal",
]

_TRACE = "lbm_s-2676B"
_TRACE2 = "mcf_s-1554B"
_SCALE = 0.03  # a few hundred records: real simulations, chaos-fast


# ----------------------------------------------------------------------
# Injection primitives
# ----------------------------------------------------------------------

class ENOSPCJournal(Journal):
    """A journal whose N-th appends fail with ``ENOSPC`` (1-based)."""

    def __init__(self, path: Union[str, Path],
                 fail_on: Sequence[int] = ()) -> None:
        super().__init__(path)
        self.fail_on = frozenset(fail_on)
        self.refused = 0
        self._appends = 0

    def append(self, outcome) -> None:
        self._appends += 1
        if self._appends in self.fail_on:
            self.refused += 1
            raise OSError(errno.ENOSPC,
                          "No space left on device (injected)")
        super().append(outcome)


class KillerJournal(Journal):
    """A journal that SIGKILLs its own process mid-append.

    On the ``kill_on``-th append it first spills a torn half-line
    directly into the journal file — the artefact a real power cut or
    OOM kill leaves behind — and then SIGKILLs the process, so neither
    ``finally`` blocks nor ``atexit`` hooks get to tidy up.
    """

    def __init__(self, path: Union[str, Path], kill_on: int = 2) -> None:
        super().__init__(path)
        self.kill_on = kill_on
        self._appends = 0

    def append(self, outcome) -> None:
        self._appends += 1
        if self._appends == self.kill_on:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write('{"schema": 2, "key": "torn-')
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        super().append(outcome)


class SkewedClock:
    """A monotonic clock that jumps ``jump`` seconds forward after
    ``after`` readings — an NTP step / suspend-resume, deterministically.
    """

    def __init__(self, jump: float = 120.0, after: int = 40) -> None:
        self.jump = jump
        self.after = after
        self.jumped = False
        self._calls = 0
        self._offset = 0.0

    def __call__(self) -> float:
        self._calls += 1
        if not self.jumped and self._calls > self.after:
            self.jumped = True
            self._offset = self.jump
        return time.monotonic() + self._offset


# ----------------------------------------------------------------------
# Journal invariants
# ----------------------------------------------------------------------

def verify_journal(path: Union[str, Path]) -> List[str]:
    """Check the journal invariants; returns human-readable problems.

    * every line parses as JSON — a torn line is tolerated only as the
      very last line (the artefact of a mid-append kill);
    * no key has more than one ``ok`` record (a resume must replay, not
      re-run, finished jobs).
    """
    path = Path(path)
    problems: List[str] = []
    if not path.exists():
        return ["journal file does not exist"]
    lines = path.read_text(encoding="utf-8").splitlines()
    ok_counts: Dict[str, int] = {}
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i != len(lines) - 1:
                problems.append(
                    f"torn/corrupt line {i + 1} of {len(lines)} is not "
                    f"at EOF: {line[:60]!r}"
                )
            continue
        if rec.get("status") == "ok" and rec.get("key"):
            ok_counts[rec["key"]] = ok_counts.get(rec["key"], 0) + 1
    for key, count in sorted(ok_counts.items()):
        if count > 1:
            problems.append(f"{count} duplicate ok records for {key!r}")
    return problems


def _reference_results(specs: Sequence[JobSpec]) -> Dict[str, dict]:
    """Fault-free inline results, as dicts, for bit-identity checks."""
    return {spec.key: worker.run_job(spec, 1).to_dict() for spec in specs}


def _check_resume(
    journal_path: Path,
    specs: Sequence[JobSpec],
    reference: Dict[str, dict],
    expect_executed: Optional[set] = None,
) -> List[str]:
    """Resume the campaign inline; assert it executes exactly the
    missing keys and that the merged results are bit-identical to the
    fault-free reference."""
    problems: List[str] = []
    executed: List[str] = []

    def counting_run(job, attempt):
        executed.append(job.key)
        return worker.run_job(job, attempt)

    runner = ExperimentRunner(
        RunnerConfig(workers=0, retries=0, journal_path=journal_path,
                     resume=True),
        run_fn=counting_run,
    )
    suite = runner.run(specs)

    if expect_executed is not None and set(executed) != expect_executed:
        problems.append(
            f"resume executed {sorted(executed)}, expected "
            f"{sorted(expect_executed)}"
        )
    if len(suite.outcomes) != len(specs):
        problems.append(
            f"resume finished {len(suite.outcomes)}/{len(specs)} jobs"
        )
    for outcome in suite.outcomes:
        if not outcome.ok:
            problems.append(f"resume failed {outcome.key}: "
                            f"{outcome.message}")
            continue
        result = outcome.result
        as_dict = result.to_dict() if hasattr(result, "to_dict") else result
        if as_dict != reference[outcome.key]:
            problems.append(
                f"results for {outcome.key} are not bit-identical to the "
                f"fault-free reference"
            )
    return problems


# ----------------------------------------------------------------------
# Scenario harness
# ----------------------------------------------------------------------

@dataclass
class ScenarioResult:
    name: str
    passed: bool
    skipped: bool = False
    duration: float = 0.0
    problems: List[str] = field(default_factory=list)

    def banner(self) -> str:
        if self.skipped:
            state = "SKIP"
        else:
            state = "PASS" if self.passed else "FAIL"
        return f"[{state}] {self.name} ({self.duration:.1f}s)"


def _campaign_specs() -> List[JobSpec]:
    """Four cheap-but-real jobs with distinct journal keys."""
    return [
        JobSpec(trace=t, l1d="none", scale=_SCALE, warmup_fraction=wf)
        for t in (_TRACE, _TRACE2)
        for wf in (0.2, 0.25)
    ]


def _supervisor(
    journal: Journal,
    workers: int = 1,
    timeout: Optional[float] = 120.0,
    retries: int = 0,
    sup: Optional[SupervisorConfig] = None,
    **kwargs,
) -> CampaignSupervisor:
    return CampaignSupervisor(
        RunnerConfig(workers=workers, timeout=timeout, retries=retries),
        supervisor=sup or SupervisorConfig(
            heartbeat_every=200, heartbeat_timeout=30.0,
            poll_interval=0.05, handle_signals=False,
        ),
        journal=journal,
        **kwargs,
    )


def _read_manifest(journal_path: Path) -> dict:
    path = journal_path.with_name(journal_path.name + ".manifest.json")
    doc, _healed = load_campaign_manifest(path)
    return doc if isinstance(doc, dict) else {}


def _event_kinds(manifest: dict) -> List[str]:
    return [e.get("event") for e in manifest.get("events", [])]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _scenario_disk_full(workdir: Path) -> List[str]:
    """Appends 2 and 3 hit ENOSPC; nothing may be lost or reordered."""
    specs = _campaign_specs()
    reference = _reference_results(specs)
    journal = ENOSPCJournal(workdir / "journal.jsonl", fail_on=(2, 3))
    suite = _supervisor(journal).run(specs)

    problems = []
    if len(suite.completed) != len(specs):
        problems.append(f"campaign completed {len(suite.completed)}/"
                        f"{len(specs)} jobs under ENOSPC")
    if journal.refused != 2:
        problems.append(f"expected 2 refused appends, saw "
                        f"{journal.refused}")
    problems += verify_journal(journal.path)
    records = journal.load()
    missing = {s.key for s in specs} - set(records)
    if missing:
        problems.append(f"journal lost entries for {sorted(missing)}")
    if "journal-degraded" not in _event_kinds(_read_manifest(journal.path)):
        problems.append("manifest records no journal-degraded event")
    # The backlog was flushed, so a resume replays everything.
    problems += _check_resume(journal.path, specs, reference,
                              expect_executed=set())
    return problems


def _sigkill_campaign(workdir_str: str, kill_on: int) -> None:
    """Child-process body for the sigkill scenario (killed mid-append)."""
    journal = KillerJournal(Path(workdir_str) / "journal.jsonl",
                            kill_on=kill_on)
    _supervisor(journal).run(_campaign_specs())


def _scenario_sigkill(workdir: Path) -> List[str]:
    """SIGKILL mid-journal-append: torn tail, then a perfect resume."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return ["fork start method unavailable (platform)"]
    specs = _campaign_specs()
    reference = _reference_results(specs)
    kill_on = 2
    proc = ctx.Process(target=_sigkill_campaign,
                       args=(str(workdir), kill_on))
    proc.start()
    # Poll is_alive() (waitpid-backed) rather than join(): join waits on
    # a sentinel pipe that surviving grandchildren would hold open, and
    # this scenario is exactly about ungraceful process death.
    deadline = time.monotonic() + 120
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    problems = []
    if proc.is_alive():
        proc.kill()
        proc.join()
        problems.append("campaign child did not die within 120s")
    elif proc.exitcode != -signal.SIGKILL:
        problems.append(f"campaign child exited {proc.exitcode}, "
                        f"expected -SIGKILL")

    journal_path = workdir / "journal.jsonl"
    problems += verify_journal(journal_path)
    recorded = {
        key for key, rec in Journal(journal_path).load().items()
        if rec.get("status") == "ok"
    }
    if len(recorded) != kill_on - 1:
        problems.append(
            f"expected {kill_on - 1} durable records before the kill, "
            f"found {len(recorded)}"
        )
    missing = {s.key for s in specs} - recorded
    problems += _check_resume(journal_path, specs, reference,
                              expect_executed=missing)
    return problems


def _scenario_hung_worker(workdir: Path) -> List[str]:
    """A wedged worker must die by heartbeat, not by wall clock."""
    spec = JobSpec(
        trace=_TRACE, l1d="none", scale=_SCALE,
        fault=FaultSpec(kind="hang", hang_seconds=600.0),
    )
    wall_budget = 300.0
    journal = Journal(workdir / "journal.jsonl")
    sup = SupervisorConfig(heartbeat_every=200, heartbeat_timeout=1.0,
                           poll_interval=0.05, handle_signals=False)
    started = time.monotonic()
    suite = _supervisor(journal, timeout=wall_budget, sup=sup).run([spec])
    took = time.monotonic() - started

    problems = []
    outcome = suite.outcomes[0] if suite.outcomes else None
    if outcome is None or outcome.ok:
        problems.append("hung job did not fail")
    else:
        if outcome.error_type != "HeartbeatTimeout":
            problems.append(f"expected HeartbeatTimeout, got "
                            f"{outcome.error_type}: {outcome.message}")
        if outcome.kind != "timeout":
            problems.append(f"expected kind=timeout, got {outcome.kind}")
    if took > wall_budget / 10:
        problems.append(
            f"preemption took {took:.1f}s — not 'well before' the "
            f"{wall_budget:.0f}s wall-clock budget"
        )
    problems += verify_journal(journal.path)
    return problems


def _scenario_balloon(workdir: Path) -> List[str]:
    """A worker over the RSS cap is preempted with a ResourceError."""
    from repro.runner.resources import process_rss_mb

    spec = JobSpec(
        trace=_TRACE, l1d="none", scale=_SCALE,
        fault=FaultSpec(kind="balloon", balloon_mb=256,
                        hang_seconds=600.0),
    )
    journal = Journal(workdir / "journal.jsonl")
    # Forked workers share pages with this process, so the cap is
    # anchored to our own RSS — only the balloon can push a worker over.
    base_rss = process_rss_mb(os.getpid()) or 128.0
    sup = SupervisorConfig(
        heartbeat_every=200, heartbeat_timeout=60.0, poll_interval=0.05,
        handle_signals=False,
        policy=ResourcePolicy(max_worker_rss_mb=base_rss + 128.0),
    )
    # Memory/disk readers are scripted to "plenty" so only the RSS guard
    # (reading the real /proc) can act — the scenario is then immune to
    # whatever the host happens to be doing.
    monitor = ResourceMonitor(
        sup.policy,
        mem_reader=lambda: 65536.0,
        disk_reader=lambda path: 65536.0,
    )
    suite = _supervisor(journal, timeout=600.0, sup=sup,
                        monitor=monitor).run([spec])

    problems = []
    outcome = suite.outcomes[0] if suite.outcomes else None
    if outcome is None or outcome.ok:
        problems.append("ballooning job did not fail")
    else:
        if outcome.kind != "resource":
            problems.append(f"expected kind=resource, got "
                            f"{outcome.kind}: {outcome.message}")
        if outcome.error_type != "ResourceError":
            problems.append(f"expected ResourceError, got "
                            f"{outcome.error_type}")
    kinds = _event_kinds(_read_manifest(journal.path))
    if "rss-preempt" not in kinds:
        problems.append(f"manifest records no rss-preempt event "
                        f"(events: {kinds})")
    problems += verify_journal(journal.path)
    return problems


def _scenario_clock_skew(workdir: Path) -> List[str]:
    """A +120s clock jump mid-campaign must not expire healthy jobs."""
    specs = [
        JobSpec(trace=_TRACE, l1d="none", scale=_SCALE,
                fault=FaultSpec(kind="hang", hang_seconds=1.5)),
        JobSpec(trace=_TRACE2, l1d="none", scale=_SCALE),
    ]
    journal = Journal(workdir / "journal.jsonl")
    clock = SkewedClock(jump=120.0, after=40)
    sup = SupervisorConfig(heartbeat_every=0, poll_interval=0.05,
                           skew_threshold=30.0, handle_signals=False)
    suite = _supervisor(journal, timeout=30.0, sup=sup,
                        now_fn=clock).run(specs)

    problems = []
    if not clock.jumped:
        problems.append("clock never jumped — scenario misconfigured")
    for outcome in suite.outcomes:
        if not outcome.ok:
            problems.append(
                f"{outcome.key} failed after the clock jump "
                f"[{outcome.kind}] {outcome.message}"
            )
    if len(suite.outcomes) != len(specs):
        problems.append(f"only {len(suite.outcomes)}/{len(specs)} "
                        f"outcomes recorded")
    if "clock-skew" not in _event_kinds(_read_manifest(journal.path)):
        problems.append("manifest records no clock-skew event")
    problems += verify_journal(journal.path)
    return problems


# ----------------------------------------------------------------------
# Campaign-service scenarios (repro.service)
# ----------------------------------------------------------------------

def _service_jobs(specs: Sequence[JobSpec]) -> List[dict]:
    """Submission payload entries matching ``specs``."""
    from repro.service.daemon import spec_to_dict

    return [spec_to_dict(spec) for spec in specs]


def _start_service(state_dir: Path, workers: int = 1,
                   lease_duration: float = 30.0, **overrides):
    from repro.service import CampaignService, ServiceConfig

    service = CampaignService(ServiceConfig(
        state_dir=state_dir, workers=workers,
        lease_duration=lease_duration, lease_poll=0.05,
        heartbeat_every=200, **overrides,
    ))
    service.start()
    return service


def _wait_campaign(service, cid: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.status(cid)
        if status["state"] in ("done", "cancelled"):
            return status
        time.sleep(0.05)
    return service.status(cid)


def _service_results_map(service, cid: str) -> Dict[str, dict]:
    """``job key -> result dict`` from the service's verified results."""
    resp = service.results(cid)
    return {r["key"]: r.get("result") for r in resp["results"]}


def _wal_records(state_dir: Path) -> List[dict]:
    records = []
    path = state_dir / "service.wal"
    if not path.exists():
        return records
    for line in path.read_text(encoding="ascii").splitlines():
        try:
            records.append(json.loads(line)["rec"])
        except (json.JSONDecodeError, KeyError):
            continue  # torn tail; the WAL's own replay handles it
    return records


def _check_wal_exactly_once(state_dir: Path,
                            expect_keys: int) -> List[str]:
    """Every content key must have exactly one ``ok`` result record."""
    counts: Dict[str, int] = {}
    for rec in _wal_records(state_dir):
        if rec.get("type") == "result" and rec.get("status") == "ok":
            key = rec.get("content_key", "?")
            counts[key] = counts.get(key, 0) + 1
    problems = []
    dupes = {k: n for k, n in counts.items() if n > 1}
    if dupes:
        problems.append(f"duplicated WAL result records: {dupes}")
    if len(counts) != expect_keys:
        problems.append(f"WAL holds ok results for {len(counts)} content "
                        f"keys, expected {expect_keys}")
    return problems


def _service_daemon_body(state_dir_str: str) -> None:
    """Child-process body for the service-sigkill scenario."""
    service = _start_service(Path(state_dir_str), workers=1)
    while True:  # parent SIGKILLs us; there is no graceful exit here
        time.sleep(0.5)


def _scenario_service_sigkill(workdir: Path) -> List[str]:
    """SIGKILL the daemon mid-campaign; a restart must lose nothing."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return ["fork start method unavailable (platform)"]
    from repro.service import ServiceClient

    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    proc = ctx.Process(target=_service_daemon_body, args=(str(state_dir),))
    proc.start()

    problems: List[str] = []
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + 30
    while not endpoint.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    if not endpoint.exists():
        proc.kill()
        proc.join()
        return ["daemon child never wrote endpoint.json"]
    info = json.loads(endpoint.read_text(encoding="utf-8"))
    client = ServiceClient(info["host"], info["port"], retries=2,
                           jitter_seed=0)
    resp = client.submit(_service_jobs(specs))
    cid = resp["campaign"]
    # Let the single worker land at least one result, then kill the
    # daemon dead — no drain, no cleanup, mid-campaign by construction.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if client.healthz().get("jobs_computed", 0) >= 1:
            break
        time.sleep(0.01)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join()

    computed_before = sum(
        1 for rec in _wal_records(state_dir)
        if rec.get("type") == "result" and rec.get("status") == "ok"
    )
    if computed_before >= len(specs):
        problems.append("daemon finished the whole campaign before the "
                        "kill — not mid-campaign")

    # Restart against the same state directory (in-process this time).
    service = _start_service(state_dir, workers=1)
    try:
        if service.epoch != 2:
            problems.append(f"restarted daemon has epoch {service.epoch}, "
                            f"expected 2")
        # Only the records written before the restart's epoch marker
        # describe the kill; the resumed workers append concurrently.
        wal = _wal_records(state_dir)
        epoch2 = next(i for i, r in enumerate(wal)
                      if r.get("type") == "epoch" and r.get("epoch") == 2)
        dead_epoch = wal[:epoch2]
        open_at_kill = (
            sum(1 for r in dead_epoch if r.get("type") == "lease")
            - sum(1 for r in dead_epoch
                  if r.get("type") in ("result", "lease-expired"))
        )
        orphaned = [r for r in wal if r.get("type") == "lease-expired"
                    and r.get("reason") == "daemon epoch lost"]
        if open_at_kill > 0 and not orphaned:
            problems.append("a lease was open at the kill but replay "
                            "recorded no epoch-lost expiry")
        if orphaned and len(orphaned) != open_at_kill:
            problems.append(f"{open_at_kill} leases were open at the kill "
                            f"but {len(orphaned)} epoch-lost expiries "
                            f"were recorded")
        status = _wait_campaign(service, cid)
        if status["state"] != "done":
            return problems + [f"campaign stuck {status['state']!r} after "
                               f"restart: {status['counts']}"]
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} are not "
                                f"byte-identical after the restart")
        problems += _check_wal_exactly_once(state_dir, len(specs))
    finally:
        service.stop()
    return problems


def _raw_http(host: str, port: int, payload: bytes) -> None:
    """Send raw bytes and slam the connection shut (no read)."""
    import socket

    sock = socket.create_connection((host, port), timeout=5.0)
    try:
        sock.sendall(payload)
    finally:
        sock.close()


def _scenario_client_disconnect(workdir: Path) -> List[str]:
    """Torn uploads and abandoned downloads must not hurt the daemon."""
    specs = _campaign_specs()
    reference = _reference_results(specs)
    service = _start_service(workdir / "state", workers=2)
    problems: List[str] = []
    try:
        host, port = service.address
        body = json.dumps({"jobs": _service_jobs(specs)}).encode("utf-8")

        # 1. Truncated POST: promise the full body, send half, hang up.
        #    The daemon must not act on the partial submission.
        head = (f"POST /v1/campaigns HTTP/1.1\r\nHost: chaos\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode("ascii")
        _raw_http(host, port, head + body[:len(body) // 2])
        time.sleep(0.2)  # let the handler thread trip over the EOF
        health = service.healthz()
        if not health.get("ok"):
            problems.append("daemon unhealthy after truncated upload")
        if health.get("campaigns") != 0:
            problems.append("a truncated submission created a campaign")

        # 2. A full, well-formed submission must still work.
        resp = service.submit({"jobs": _service_jobs(specs)})
        cid = resp["campaign"]
        status = _wait_campaign(service, cid)
        if status["state"] != "done":
            return problems + [f"campaign did not finish: "
                               f"{status['counts']}"]

        # 3. Mid-stream disconnect: request the results, vanish before
        #    reading a byte.  The daemon eats the broken pipe.
        _raw_http(host, port,
                  (f"GET /v1/campaigns/{cid}/results HTTP/1.1\r\n"
                   f"Host: chaos\r\n\r\n").encode("ascii"))
        time.sleep(0.2)
        if not service.healthz().get("ok"):
            problems.append("daemon unhealthy after mid-stream disconnect")

        # 4. The patient client still gets every byte, exactly right.
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} differ from the "
                                f"direct-runner reference")
        problems += _check_wal_exactly_once(workdir / "state", len(specs))
    finally:
        service.stop()
    return problems


def _scenario_cache_corruption(workdir: Path) -> List[str]:
    """A bit-flipped cache entry must be quarantined and recomputed."""
    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    service = _start_service(state_dir, workers=2)
    problems: List[str] = []
    try:
        resp = service.submit({"jobs": _service_jobs(specs)})
        cid = resp["campaign"]
        if _wait_campaign(service, cid)["state"] != "done":
            return ["campaign did not finish before corruption"]

        entries = sorted((state_dir / "cache").glob("*.json"))
        if len(entries) != len(specs):
            return [f"expected {len(specs)} cache entries, found "
                    f"{len(entries)}"]
        victim = entries[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # deterministic single-byte flip
        victim.write_bytes(bytes(blob))

        # The verified read must refuse the entry and requeue the job.
        from repro.errors import ServiceError
        try:
            service.results(cid)
            problems.append("corrupt cache entry was served without "
                            "complaint")
        except ServiceError as exc:
            if exc.status != 409:
                problems.append(f"expected a 409 recompute signal, got "
                                f"{exc.status}: {exc}")
        quarantined = list((state_dir / "cache").glob("*.quarantined-*"))
        if len(quarantined) != 1:
            problems.append(f"expected 1 quarantined entry, found "
                            f"{len(quarantined)}")
        if _wait_campaign(service, cid)["state"] != "done":
            return problems + ["recompute after corruption never finished"]
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"healed results for {spec.key} are not "
                                f"byte-identical to the reference")
        if service.cache.quarantined != 1:
            problems.append(f"cache counted {service.cache.quarantined} "
                            f"quarantines, expected 1")
        if service.jobs_computed != len(specs) + 1:
            problems.append(f"expected exactly one recompute "
                            f"({len(specs) + 1} total), daemon computed "
                            f"{service.jobs_computed}")
    finally:
        service.stop()
    return problems


def _scenario_duplicate_submit(workdir: Path) -> List[str]:
    """Two racing identical submissions must compute each job once."""
    import threading

    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    service = _start_service(state_dir, workers=2)
    problems: List[str] = []
    try:
        payload = {"jobs": _service_jobs(specs)}
        barrier = threading.Barrier(2)
        responses: List[dict] = [None, None]

        def racer(slot: int) -> None:
            barrier.wait()
            responses[slot] = service.submit(payload)

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cids = {r["campaign"] for r in responses if r}
        if len(cids) != 1:
            return [f"racing submissions produced {len(cids)} campaigns: "
                    f"{sorted(cids)}"]
        if sum(1 for r in responses if r and r["created"]) != 1:
            problems.append("exactly one racer should have created the "
                            "campaign")
        cid = cids.pop()
        if _wait_campaign(service, cid)["state"] != "done":
            return problems + ["deduplicated campaign did not finish"]
        if service.jobs_computed != len(specs):
            problems.append(f"duplicate submission caused recomputation: "
                            f"{service.jobs_computed} computes for "
                            f"{len(specs)} unique jobs")
        campaign_recs = [r for r in _wal_records(state_dir)
                         if r.get("type") == "campaign"]
        if len(campaign_recs) != 1:
            problems.append(f"{len(campaign_recs)} campaign WAL records "
                            f"for one logical campaign")
        # A third, late submission: 100% cache hit, zero new work.
        resp = service.submit(payload)
        if not resp["all_cached"] or resp["cache_hits"] != len(specs):
            problems.append(f"resubmit was not fully cached: "
                            f"{resp['cache_hits']}/{resp['total']}")
        if service.jobs_computed != len(specs):
            problems.append("resubmit of a finished campaign recomputed")
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} differ from the "
                                f"direct-runner reference")
        problems += _check_wal_exactly_once(state_dir, len(specs))
    finally:
        service.stop()
    return problems


# ----------------------------------------------------------------------
# Fleet scenarios (repro.fleet): remote agents under network fire
# ----------------------------------------------------------------------

def _wait_until(predicate, timeout: float = 30.0,
                interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _fleet_agent(service, plan=None, run_fn=None, name: str = "chaos",
                 pool: int = 1):
    """An in-process agent whose every request crosses a fault injector."""
    from repro.fleet import FaultyTransport, FleetAgent, HTTPTransport

    host, port = service.address
    transport = FaultyTransport(HTTPTransport(host, port, timeout=10.0),
                                plan)
    agent = FleetAgent(host, port, pool=pool, name=name,
                       run_fn=run_fn or worker.run_job,
                       transport=transport, poll=0.05, retries=2,
                       backoff_base=0.05, jitter_seed=0)
    return agent, transport


def _fleet_events(state_dir: Path) -> List[str]:
    """Event kinds from the daemon's fleet manifest, in order."""
    path = state_dir / "fleet-manifest.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    return [e.get("event") for e in doc.get("events", [])]


def _agent_held_lease(service) -> bool:
    return any(lease.agent for lease in service.leases.live())


def _fleet_agent_body(host: str, port: int) -> None:
    """Child-process body for the agent-sigkill scenario.

    The slow ``run_fn`` guarantees the agent is mid-job — holding a
    lease, result not yet delivered — for long enough that the parent's
    SIGKILL always lands inside the window.
    """
    from repro.fleet import FleetAgent

    def slow_run(spec, attempt):
        time.sleep(0.8)
        return worker.run_job(spec, attempt)

    agent = FleetAgent(host, port, pool=1, name="doomed",
                       run_fn=slow_run, poll=0.05, jitter_seed=0)
    agent.start()
    while True:  # parent SIGKILLs us; there is no graceful exit here
        time.sleep(0.5)


def _scenario_agent_sigkill(workdir: Path) -> List[str]:
    """SIGKILL a remote agent mid-job; nothing lost, nothing doubled.

    The daemon must declare the silent agent dead, requeue its lease
    exactly once, fall back to its local pool (degraded mode, recorded
    in the manifest), and still finish byte-identical to a direct run.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return ["fork start method unavailable (platform)"]
    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    # Short leases so the dead agent is reaped in scenario time.
    service = _start_service(state_dir, workers=1, lease_duration=1.5)
    problems: List[str] = []
    proc = None
    try:
        host, port = service.address
        proc = ctx.Process(target=_fleet_agent_body, args=(host, port))
        proc.start()
        # Register *before* submitting so the agent — not the local
        # pool — takes the first lease (a live agent blocks local).
        if not _wait_until(lambda: service.fleet.live_agents()):
            return ["agent child never registered"]
        cid = service.submit({"jobs": _service_jobs(specs)})["campaign"]
        if not _wait_until(lambda: _agent_held_lease(service)):
            return ["agent never held a lease"]
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()
        proc = None

        status = _wait_campaign(service, cid)
        if status["state"] != "done":
            return problems + [f"campaign stuck after the agent kill: "
                               f"{status['counts']}"]
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} are not "
                                f"byte-identical after the agent death")
        events = _fleet_events(state_dir)
        for needed in ("agent-registered", "agent-dead", "agent-requeue",
                       "degraded-enter"):
            if needed not in events:
                problems.append(f"manifest records no {needed} event "
                                f"(saw {events})")
        if not service.fleet_status()["degraded"]:
            problems.append("daemon is not degraded with zero live agents")
        requeued = [r for r in _wal_records(state_dir)
                    if r.get("type") == "lease-expired" and r.get("agent")]
        if not requeued:
            problems.append("no agent-attributed lease-expired WAL record")
        problems += _check_wal_exactly_once(state_dir, len(specs))
    finally:
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join()
        service.stop()
    return problems


def _scenario_network_partition(workdir: Path) -> List[str]:
    """Sever the agent's link mid-job, then heal it and rejoin.

    During the partition the daemon must reap the agent, requeue its
    lease, and finish on the local pool (degraded).  After the heal the
    agent's next contact must rejoin it and close the recorded
    degradation window — and the result the agent computed behind the
    partition must not produce a second record.
    """

    def slow_run(spec, attempt):
        time.sleep(0.6)
        return worker.run_job(spec, attempt)

    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    service = _start_service(state_dir, workers=1, lease_duration=1.0)
    agent, transport = _fleet_agent(service, run_fn=slow_run, name="flaky")
    problems: List[str] = []
    try:
        agent.start()
        cid = service.submit({"jobs": _service_jobs(specs)})["campaign"]
        if not _wait_until(lambda: _agent_held_lease(service)):
            return ["agent never held a lease"]
        transport.set_partitioned(True)

        status = _wait_campaign(service, cid)
        if status["state"] != "done":
            return [f"campaign stuck behind the partition: "
                    f"{status['counts']}"]
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} are not "
                                f"byte-identical across the partition")
        events = _fleet_events(state_dir)
        for needed in ("agent-dead", "agent-requeue", "degraded-enter"):
            if needed not in events:
                problems.append(f"manifest records no {needed} event "
                                f"(saw {events})")
        if transport.stats.partitioned == 0:
            problems.append("the injected partition never dropped a "
                            "request")

        # Heal the link: the agent must rejoin and end the degradation.
        transport.set_partitioned(False)
        if not _wait_until(
                lambda: not service.fleet_status()["degraded"]):
            problems.append("degradation window never closed after the "
                            "heal")
        events = _fleet_events(state_dir)
        for needed in ("agent-rejoined", "degraded-exit"):
            if needed not in events:
                problems.append(f"manifest records no {needed} event "
                                f"after the heal (saw {events})")
        windows = service.manifest.degraded_windows()
        if not windows or not windows[-1].get("recovered"):
            problems.append(f"no recovered degradation window recorded: "
                            f"{windows}")
        problems += _check_wal_exactly_once(state_dir, len(specs))
    finally:
        agent.stop()
        service.stop()
    return problems


def _scenario_duplicate_delivery(workdir: Path) -> List[str]:
    """Deliver every result twice (plus stale redelivery): record once.

    ``duplicate_paths`` makes the transport send each ``/result`` POST
    twice back to back; ``reorder_paths`` re-delivers a stale copy once
    more before the agent's next request.  The lease ledger must record
    each job exactly once, route every duplicate through the late-result
    drop path, and keep the campaign byte-identical.
    """
    from repro.fleet import FaultPlan

    specs = _campaign_specs()
    reference = _reference_results(specs)
    state_dir = workdir / "state"
    service = _start_service(state_dir, workers=1)
    plan = FaultPlan(duplicate_paths=("/result",),
                     reorder_paths=("/result",))
    agent, transport = _fleet_agent(service, plan=plan, name="stutter")
    problems: List[str] = []
    try:
        agent.start()
        cid = service.submit({"jobs": _service_jobs(specs)})["campaign"]
        status = _wait_campaign(service, cid)
        if status["state"] != "done":
            return [f"campaign did not finish under duplicate delivery: "
                    f"{status['counts']}"]
        # The daemon marks the campaign done on the *first* delivery of
        # the final result; the agent thread may still be mid-way
        # through sending its injected duplicate, so give the counter a
        # beat to catch up before judging it.
        _wait_until(lambda: transport.stats.duplicated >= len(specs),
                    timeout=5.0)
        if transport.stats.duplicated < len(specs):
            problems.append(f"only {transport.stats.duplicated} duplicate "
                            f"deliveries were injected for {len(specs)} "
                            f"results")
        if service.jobs_computed != len(specs):
            problems.append(f"{service.jobs_computed} computes for "
                            f"{len(specs)} jobs under duplicate delivery")
        merged = _service_results_map(service, cid)
        for spec in specs:
            if merged.get(spec.key) != reference[spec.key]:
                problems.append(f"results for {spec.key} are not "
                                f"byte-identical under duplicate delivery")
        _wait_until(lambda: sum(
            1 for job in service.status(cid)["jobs"]
            for event in job.get("lineage", [])
            if event.get("event") == "late-result") >= len(specs),
            timeout=5.0)
        late = sum(1 for job in service.status(cid)["jobs"]
                   for event in job.get("lineage", [])
                   if event.get("event") == "late-result")
        if late < len(specs):
            problems.append(f"expected >= {len(specs)} late-result drops "
                            f"in the lineage, saw {late}")
        problems += _check_wal_exactly_once(state_dir, len(specs))
    finally:
        agent.stop()
        service.stop()
    return problems


def _scenario_digest_mismatch(workdir: Path) -> List[str]:
    """Corrupt the trace-store interchange file: refuse, requeue, heal.

    The scheduler hashed the store at submission; the agent must detect
    that the bytes on disk no longer match the digest the lease
    promised, refuse the job (typed, without executing it), and burn
    exactly one requeue credit.  Restoring the bytes must let the
    requeued attempt verify, run, and land byte-identical.
    """
    from repro.memory.tracestore import ensure_store

    store_dir = workdir / "stores"
    path = ensure_store(store_dir, _TRACE, _SCALE)
    spec = dataclasses.replace(
        JobSpec(trace=_TRACE, l1d="none", scale=_SCALE,
                warmup_fraction=0.2),
        trace_path=str(path))
    reference = worker.run_job(spec, 1).to_dict()
    pristine = path.read_bytes()

    state_dir = workdir / "state"
    service = _start_service(state_dir, workers=1)
    # Driven synchronously (no threads): each step below is one
    # deterministic lease/report exchange, so the corruption window
    # cannot race the agent's poll loop.
    agent, transport = _fleet_agent(service, name="careful")
    problems: List[str] = []
    try:
        agent.register()
        cid = service.submit({"jobs": _service_jobs([spec])})["campaign"]
        blob = bytearray(pristine)
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        lease1 = agent._agent_request("lease", {"max": 1})
        if len(lease1.get("leases", ())) != 1:
            return ["agent could not lease the poisoned job"]
        agent._run_one(lease1["leases"][0])
        if agent.jobs_refused != 1 or agent.jobs_done != 0:
            problems.append(f"agent should have refused the poisoned job "
                            f"(refused={agent.jobs_refused}, "
                            f"done={agent.jobs_done})")
        if service.jobs_computed != 0:
            problems.append("a job ran against corrupted trace bytes")
        refused = [r for r in _wal_records(state_dir)
                   if r.get("type") == "refused"]
        if len(refused) != 1 or not refused[0].get("requeued") \
                or refused[0].get("agent") != agent.agent_id:
            problems.append(f"expected one agent-attributed requeued "
                            f"refusal in the WAL, saw {refused}")
        if "job-refused" not in _fleet_events(state_dir):
            problems.append("manifest records no job-refused event")

        # Heal the bytes: the requeued attempt must verify and run.
        path.write_bytes(pristine)
        lease2 = agent._agent_request("lease", {"max": 1})
        if len(lease2.get("leases", ())) != 1:
            return problems + ["requeued job was not leasable after the "
                               "heal"]
        if lease2["leases"][0].get("attempt") != 2:
            problems.append(f"healed lease should be attempt 2, got "
                            f"{lease2['leases'][0].get('attempt')}")
        agent._run_one(lease2["leases"][0])
        status = service.status(cid)
        if status["state"] != "done":
            return problems + [f"campaign not done after the heal: "
                               f"{status['counts']}"]
        merged = _service_results_map(service, cid)
        if merged.get(spec.key) != reference:
            problems.append("healed result is not byte-identical to the "
                            "direct-runner reference")
        record = service.fleet.get(agent.agent_id)
        if record is None or record.results_refused != 1 \
                or record.results_ok != 1:
            problems.append(f"registry miscounted the refusal: "
                            f"{record.describe() if record else None}")
        problems += _check_wal_exactly_once(state_dir, 1)
    finally:
        service.stop()
    return problems


SCENARIOS: Dict[str, Callable[[Path], List[str]]] = {
    "disk-full": _scenario_disk_full,
    "sigkill": _scenario_sigkill,
    "hung-worker": _scenario_hung_worker,
    "balloon": _scenario_balloon,
    "clock-skew": _scenario_clock_skew,
    "service-sigkill": _scenario_service_sigkill,
    "client-disconnect": _scenario_client_disconnect,
    "cache-corruption": _scenario_cache_corruption,
    "duplicate-submit": _scenario_duplicate_submit,
    "agent-sigkill": _scenario_agent_sigkill,
    "network-partition": _scenario_network_partition,
    "duplicate-delivery": _scenario_duplicate_delivery,
    "digest-mismatch": _scenario_digest_mismatch,
}

#: The CI subset: one journal-durability kill, one ENOSPC storm, one
#: liveness preemption — the three invariants a campaign lives or dies
#: by — plus all four campaign-service scenarios (daemon kill, torn
#: connections, cache corruption, duplicate submission) and the fastest
#: fleet scenario (duplicate delivery over the faulty transport).
QUICK_SCENARIOS = ("disk-full", "sigkill", "hung-worker",
                   "service-sigkill", "client-disconnect",
                   "cache-corruption", "duplicate-submit",
                   "duplicate-delivery")


def run_chaos(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    workdir: Optional[Union[str, Path]] = None,
    verbose: bool = False,
) -> List[ScenarioResult]:
    """Run chaos scenarios; each gets a private subdirectory.

    ``scenarios`` selects by name (default: all, or ``QUICK_SCENARIOS``
    when ``quick``).  Unknown names raise ``KeyError`` so typos fail
    loudly rather than silently passing.
    """
    names = list(scenarios) if scenarios else (
        list(QUICK_SCENARIOS) if quick else list(SCENARIOS)
    )
    for name in names:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown chaos scenario {name!r}; choose from "
                f"{sorted(SCENARIOS)}"
            )
    base = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    results: List[ScenarioResult] = []
    for name in names:
        subdir = base / name.replace("-", "_")
        subdir.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        try:
            problems = SCENARIOS[name](subdir)
            skipped = False
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — harness must report, not die
            problems = [f"scenario crashed: {type(exc).__name__}: {exc}"]
            skipped = False
        result = ScenarioResult(
            name=name,
            passed=not problems,
            skipped=skipped,
            duration=time.monotonic() - started,
            problems=problems,
        )
        results.append(result)
        if verbose:
            print(result.banner())
            for problem in problems:
                print(f"         - {problem}")
    return results
